//! Packet-train coalescing fast path for [`PacketSim`](crate::PacketSim).
//!
//! The exact per-packet engine pays one heap event per packet per hop, so a
//! 64 MB transfer (8192 packets) across 8 hops costs ~65k events. In the
//! common case those per-packet events are pure overhead: the train's timing
//! is fully determined by a small recurrence. This module advances whole
//! trains, one event per (message, hop), collapsing the cost from
//! O(packets × hops) to O(messages × hops).
//!
//! # The start-curve recurrence
//!
//! Within one train on one link, packet `k` starts at
//! `start[k] = max(arrival[k], start[k-1] + s)` where `s` is the full-packet
//! service time (serialization + per-packet overhead) on that link. With
//! `start[0] = max(arrival[0], link_free)` this unrolls to a piecewise-linear
//! curve in `k` ([`serve_curve`]) with at most one segment added per hop, so
//! a train's passage through a hop is O(segments), independent of packet
//! count. Arrival curves are monotone but — after a train split — not
//! necessarily convex, so [`serve_curve`] walks segments instead of assuming
//! a single line/curve crossing.
//!
//! # When coalescing is sound
//!
//! The per-packet engine serves each link FIFO in event `(arrival, seq)`
//! order. A train's packet events at a link span the window
//! `[arrival[0], arrival[P-1]]`. Contention is arbitrated at link
//! granularity, in three tiers:
//!
//! 1. **Exact flat ties at injection.** Collective schedules routinely
//!    inject several trains onto one link at the *bit-identical* instant
//!    (same ready time or same dependency completion). Both engines then
//!    serve the trains back-to-back in injection (`seq`) order, which the
//!    fast path reproduces by appending the tying train behind the committed
//!    window. This only holds when injection order itself is provable:
//!    dependents released by deliveries that are within the equivalence
//!    tolerance of each other are *tainted* (the engines may disagree on
//!    their relative order) and may not claim a tie.
//! 2. **FIFO train splitting.** When a flat train's head lands strictly
//!    inside another train's *sloped* committed window — cleanly between two
//!    of its packet arrivals — the per-packet FIFO order is still provable:
//!    the owner's first `split_index` packets, then the whole interloper,
//!    then the owner's tail. The fast path re-serves the owner's tail behind
//!    the interloper, amends the owner's downstream curve (or re-arms its
//!    delivery), and emits a [`TraceEvent::TrainSplit`].
//! 3. **Scoped fallback.** Everything else — near-ties inside the
//!    equivalence tolerance, ≥2 interlopers in one window, heads landing
//!    within the tolerance of a packet arrival — returns
//!    [`Coalesce::Contended`] and the caller re-runs only the affected
//!    messages through the per-packet engine (see
//!    [`PacketSim`](crate::PacketSim)). Transient link flaps are also left
//!    to the per-packet engine (each packet must individually re-check the
//!    outage windows).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use meshcoll_topo::{LinkId, Mesh};

use crate::audit::DEFAULT_TOLERANCE_NS;
use crate::packet_sim::{last_packet_bytes, Time};
use crate::trace::{TraceEvent, TraceSink};
use crate::{LinkStats, Message, NocConfig, NocError, SimOutcome};

/// Ambiguity margin, matched to the equivalence/audit tolerance: two event
/// times closer than this may be ordered differently by the two engines
/// (floating-point reassociation), so the fast path refuses to arbitrate.
const EPS: f64 = DEFAULT_TOLERANCE_NS;

/// Outcome of attempting the coalescing fast path.
pub(crate) enum Coalesce {
    /// The run completed; the outcome matches the per-packet engine within
    /// the equivalence tolerance.
    Done(SimOutcome),
    /// Packet trains interleave on some link in a way whose FIFO order the
    /// fast path cannot prove; the exact per-packet engine must arbitrate.
    Contended,
}

/// Train-level event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    /// The head packet of `msg` arrives at hop `hop` of its route.
    Arrive,
    /// The last packet of `msg` reaches its destination (generation `gen`;
    /// superseded deliveries are lazily dropped).
    Deliver,
}

/// One train-level event. Ordering is `(at, seq)`; `seq` is unique. Kept to
/// 24 bytes (`hop` as `u16`, `seq` as `u32`) so queue traffic stays cheap —
/// the congested sweeps move hundreds of thousands of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: Time,
    seq: u32,
    msg: u32,
    gen: u32,
    hop: u16,
    kind: Kind,
}

/// Two-level event queue tuned for wave-synchronous collective schedules.
///
/// The paper's congested schedules release trains in large same-instant
/// waves, so a flat binary heap spends most of its time sifting through
/// tens of thousands of far-future events. This queue buckets events by
/// coarse time (O(1) push) and keeps an exact `(at, seq)`-ordered heap only
/// for the bucket currently being drained, so sift depth tracks the wave
/// size instead of the whole backlog. Bucket boundaries never reorder
/// events: `bucket(t1) < bucket(t2)` implies `t1 < t2`, and same-bucket
/// order is restored by the heap. Events past the estimated horizon clamp
/// into the last bucket, degrading gracefully to plain-heap behaviour.
struct EventQueue {
    inv_width: f64,
    buckets: Vec<Vec<Event>>,
    /// Bucket currently feeding `active`; pushes at or before it go to
    /// `active` directly (event times never precede the current drain time).
    cur: usize,
    active: BinaryHeap<Reverse<Event>>,
    /// Events parked in buckets strictly after `cur`.
    parked: usize,
}

impl EventQueue {
    fn new(horizon_ns: f64, expected_events: usize) -> Self {
        // Aim for a handful of events per bucket; the clamp bounds memory
        // for degenerate inputs.
        let nbuckets = (expected_events / 4).clamp(16, 1 << 19);
        let width = (horizon_ns / nbuckets as f64).max(1e-3);
        EventQueue {
            inv_width: 1.0 / width,
            buckets: vec![Vec::new(); nbuckets],
            cur: 0,
            active: BinaryHeap::new(),
            parked: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, at: f64) -> usize {
        // The `as` cast saturates: negative times clamp to bucket 0.
        ((at * self.inv_width) as usize).min(self.buckets.len() - 1)
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        let b = self.bucket_of(ev.at.0);
        if b <= self.cur {
            self.active.push(Reverse(ev));
        } else {
            self.buckets[b].push(ev);
            self.parked += 1;
        }
    }

    /// Moves buckets forward until `active` holds the global minimum.
    fn refill(&mut self) {
        while self.active.is_empty() && self.parked > 0 {
            self.cur += 1;
            while self.buckets[self.cur].is_empty() {
                self.cur += 1;
            }
            let cur = self.cur;
            self.parked -= self.buckets[cur].len();
            self.active.extend(self.buckets[cur].drain(..).map(Reverse));
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        if self.active.is_empty() {
            self.refill();
        }
        self.active.pop().map(|Reverse(e)| e)
    }

    #[inline]
    fn peek(&mut self) -> Option<Event> {
        if self.active.is_empty() {
            self.refill();
        }
        self.active.peek().map(|&Reverse(e)| e)
    }
}

/// One linear piece of a per-hop curve: packets `k0..` start (or arrive) at
/// `t + (k - k0) · slope` until the next segment's `k0`.
#[derive(Debug, Clone, Copy)]
struct Seg {
    k0: u64,
    t: f64,
    slope: f64,
}

/// Evaluates a piecewise-linear curve at packet index `k`.
fn eval(curve: &[Seg], k: u64) -> f64 {
    let i = curve.partition_point(|s| s.k0 <= k) - 1;
    let seg = &curve[i];
    seg.t + (k - seg.k0) as f64 * seg.slope
}

/// Appends `seg`, merging when it is a bit-exact continuation of the last
/// segment (same slope, collinear) so curves stay minimal.
fn push_seg(out: &mut Vec<Seg>, seg: Seg) {
    if let Some(last) = out.last() {
        if last.slope == seg.slope && last.t + (seg.k0 - last.k0) as f64 * last.slope == seg.t {
            return;
        }
    }
    out.push(seg);
}

/// Serves the recurrence `start[k] = max(arrival[k], start[k-1] + s)` with
/// `start[0] = st0` over `k ∈ [0, pcount)`, where `arr` is a monotone
/// non-decreasing piecewise-linear arrival curve (convexity is *not*
/// required — post-split curves carry upward steps). Requires
/// `st0 >= arr(0)`, which holds because `st0 = max(arr(0), link_free)`.
///
/// Within each arrival segment the service alternates between two regimes:
/// *queued* (starts follow the burst line at slope `s`) and
/// *arrival-following* (starts equal arrivals, possible only when the
/// arrival slope is ≥ `s`). The crossing inside a segment is found by
/// binary search on the sign of `arrival − line`, which is linear there.
fn serve_curve(st0: f64, s: f64, arr: &[Seg], pcount: u64) -> Vec<Seg> {
    let mut out = Vec::new();
    serve_curve_into(st0, s, arr, pcount, &mut out);
    out
}

/// [`serve_curve`] writing into a caller-owned buffer, so the hot loop can
/// reuse one allocation across every commit.
fn serve_curve_into(st0: f64, s: f64, arr: &[Seg], pcount: u64, out: &mut Vec<Seg>) {
    debug_assert!(st0 >= eval(arr, 0));
    out.clear();
    let mut k: u64 = 0;
    let mut prev: f64 = 0.0; // start of packet k-1 (meaningful once k > 0)
    while k < pcount {
        let i = arr.partition_point(|sg| sg.k0 <= k) - 1;
        let seg = arr[i];
        let end = arr.get(i + 1).map_or(pcount, |n| n.k0.min(pcount)); // exclusive
        let m = seg.slope;
        let a_k = seg.t + (k - seg.k0) as f64 * m;
        let q0 = if k == 0 { st0 } else { (prev + s).max(a_k) };
        let a_end = seg.t + (end - 1 - seg.k0) as f64 * m;
        if q0 <= a_k && m >= s {
            // No backlog and arrivals at least service-spaced: starts track
            // arrivals through the rest of this segment.
            push_seg(
                out,
                Seg {
                    k0: k,
                    t: a_k,
                    slope: m,
                },
            );
            prev = a_end;
            k = end;
        } else {
            let line = |kk: u64| q0 + (kk - k) as f64 * s;
            if m > s && a_end > line(end - 1) {
                // The backlog drains inside this segment: find the first
                // packet whose arrival overtakes the burst line.
                let (mut lo, mut hi) = (k, end - 1);
                while lo + 1 < hi {
                    let mid = lo + (hi - lo) / 2;
                    let a_mid = seg.t + (mid - seg.k0) as f64 * m;
                    if a_mid > line(mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                push_seg(
                    out,
                    Seg {
                        k0: k,
                        t: q0,
                        slope: s,
                    },
                );
                prev = line(hi - 1);
                k = hi;
            } else {
                // Queued through the whole segment.
                push_seg(
                    out,
                    Seg {
                        k0: k,
                        t: q0,
                        slope: s,
                    },
                );
                prev = line(end - 1);
                k = end;
            }
        }
    }
}

/// The sub-curve of `curve` covering packets `from..pcount`, re-indexed so
/// the first remaining packet is index 0.
fn slice_curve(curve: &[Seg], from: u64, pcount: u64) -> Vec<Seg> {
    let i = curve.partition_point(|s| s.k0 <= from) - 1;
    let mut out = vec![Seg {
        k0: 0,
        t: eval(curve, from),
        slope: curve[i].slope,
    }];
    for seg in &curve[i + 1..] {
        if seg.k0 >= pcount {
            break;
        }
        push_seg(
            &mut out,
            Seg {
                k0: seg.k0 - from,
                t: seg.t,
                slope: seg.slope,
            },
        );
    }
    out
}

/// Per-link occupancy bookkeeping for the train engine.
#[derive(Debug, Clone, Default)]
struct LinkState {
    /// When the link can next begin serving a packet.
    free: f64,
    /// Latest committed packet-arrival time on this link.
    last_event: f64,
    /// Whether any train has been committed to this link yet.
    used: bool,
    /// The committed window is a flat hop-0 injection whose injection order
    /// is provable, so a bit-identical flat hop-0 arrival may append.
    tie_head: bool,
    /// The committed window has already absorbed one split; a second
    /// interloper cannot be ordered.
    split: bool,
    /// Owner of the committed window (meaningful when `owner_arr` is
    /// non-empty, i.e. the window is sloped and splittable).
    owner: u32,
    /// The owner's hop index on this link.
    owner_hop: u16,
    /// The owner's arrival curve on this link (sloped windows only; cleared
    /// for flat windows, which have no strict interior to split at).
    owner_arr: Vec<Seg>,
    /// The owner's committed start curve on this link (sloped windows only).
    owner_starts: Vec<Seg>,
}

/// Runs the message DAG at train granularity. `routes`/`blocked` come from
/// the caller's shared preparation pass. The fault model must have no
/// transient flaps (the caller checks). Trace events go to `sink`; on a
/// [`Coalesce::Contended`] return the sink holds a partial trace, so callers
/// wanting clean traces buffer into a temporary sink first (see
/// [`PacketSim::simulate_traced`](crate::PacketSim::simulate_traced)).
#[allow(clippy::too_many_lines)]
pub(crate) fn run<T: TraceSink>(
    cfg: &NocConfig,
    mesh: &Mesh,
    messages: &[Message],
    routes: &[Arc<[LinkId]>],
    blocked: &[bool],
    sink: &mut T,
) -> Result<Coalesce, NocError> {
    debug_assert!(cfg.faults.flaps().is_empty());
    let n = messages.len();

    let mut pending_deps: Vec<usize> = messages.iter().map(|m| m.deps.len()).collect();
    // Dependents in CSR layout (offsets + one flat slab): per-message Vecs
    // would cost an allocation apiece, and the congested schedules carry
    // ~10^5 messages.
    let mut dep_off: Vec<u32> = vec![0; n + 1];
    for m in messages {
        for d in &m.deps {
            dep_off[d.index() + 1] += 1;
        }
    }
    for i in 0..n {
        dep_off[i + 1] += dep_off[i];
    }
    let mut dep_flat: Vec<u32> = vec![0; dep_off[n] as usize];
    let mut dep_cursor: Vec<u32> = dep_off[..n].to_vec();
    for m in messages {
        for d in &m.deps {
            let c = &mut dep_cursor[d.index()];
            dep_flat[*c as usize] = m.id.index() as u32;
            *c += 1;
        }
    }
    drop(dep_cursor);
    let mut earliest: Vec<f64> = messages.iter().map(|m| m.ready_at_ns).collect();

    let mut links: Vec<LinkState> = vec![LinkState::default(); mesh.link_id_space()];
    let mut stats = LinkStats::new(mesh, &cfg.faults);
    let mut completion = vec![f64::NAN; n];
    // Arrival curve of each in-flight train at its pending hop.
    let mut curves: Vec<Vec<Seg>> = vec![Vec::new(); n];
    // Which hop the pending curve (and heap event) of each message is for.
    let mut pending_hop: Vec<u16> = vec![0; n];
    // Injection-order provability: cleared once a message's injection
    // instant came from an ambiguous (EPS-close) group of deliveries, whose
    // relative order the two engines may disagree on.
    let mut tie_ok: Vec<bool> = vec![true; n];
    // Delivery generation per message: a final-hop train split supersedes
    // the queued Deliver by bumping this (stale events drop lazily).
    let mut delivery_gen: Vec<u32> = vec![0; n];
    let mut completed: Vec<bool> = vec![false; n];

    // Per-link bandwidth, resolved once: `NocConfig::bandwidth_of` scans
    // the override list and the fault model per call, which the hot loop
    // cannot afford. Dividing by the identical cached value keeps every
    // serialization time bit-identical to the per-packet engine's.
    let bw: Vec<f64> = (0..mesh.link_id_space())
        .map(|i| cfg.bandwidth_of(LinkId(i)))
        .collect();
    // Per-message packet counts and last-packet sizes, precomputed.
    let pcount_of: Vec<u64> = messages.iter().map(|m| cfg.packets_for(m.bytes)).collect();

    // Size the event queue from an arrival-agnostic horizon estimate (the
    // busiest link's total service time). Underestimates only crowd the
    // last bucket; order is unaffected either way.
    let mut busy_est: Vec<f64> = vec![0.0; mesh.link_id_space()];
    let mut max_ready: f64 = 0.0;
    let mut expected_events = n;
    for (m, r) in messages.iter().zip(routes) {
        if r.len() >= usize::from(u16::MAX) {
            // Event hop indices are u16; no physical mesh route gets close.
            return Ok(Coalesce::Contended);
        }
        max_ready = max_ready.max(m.ready_at_ns);
        expected_events += r.len() + 1;
        let pcount = pcount_of[m.id.index()] as f64;
        for &l in r.iter() {
            let s = cfg.packet_bytes as f64 / bw[l.index()] + cfg.per_packet_overhead_ns;
            busy_est[l.index()] += pcount * s;
        }
    }
    let horizon = 2.0 * (max_ready + busy_est.iter().fold(0.0f64, |a, &b| a.max(b))) + 1.0;
    let mut heap = EventQueue::new(horizon, expected_events);
    let mut seq: u32 = 0;
    let mut injected = 0usize;
    let mut stalled = 0usize;
    let mut delivered = 0usize;
    let mut last_progress: f64 = 0.0;

    let inject = |heap: &mut EventQueue, seq: &mut u32, sink: &mut T, id: usize, at: f64| {
        if T::ENABLED {
            sink.record(TraceEvent::Inject {
                msg: messages[id].id,
                src: messages[id].src,
                dst: messages[id].dst,
                bytes: messages[id].bytes,
                packets: cfg.packets_for(messages[id].bytes),
                at_ns: at,
            });
        }
        // Every packet of the train is eligible at the injection instant,
        // so the hop-0 arrival curve is the constant `at` — it stays
        // implicit (the Arrive handler synthesizes it from the event time)
        // to keep injection allocation-free.
        *seq += 1;
        heap.push(Event {
            at: Time(at),
            seq: *seq,
            kind: Kind::Arrive,
            msg: id as u32,
            hop: 0,
            gen: 0,
        });
    };

    for (i, m) in messages.iter().enumerate() {
        if pending_deps[i] == 0 {
            if blocked[i] {
                stalled += 1;
            } else {
                inject(&mut heap, &mut seq, sink, i, m.ready_at_ns);
            }
            injected += 1;
        }
    }

    let hop_lat = cfg.per_flit_latency_ns;
    let ovh = cfg.per_packet_overhead_ns;
    // Scratch buffers reused across events so the steady-state loop never
    // allocates (the congested sweeps push ~10^5 messages through here).
    let mut group: Vec<(usize, f64)> = Vec::new();
    let mut stash: Vec<Event> = Vec::new();
    let mut starts: Vec<Seg> = Vec::new();
    while let Some(ev) = heap.pop() {
        let mi = ev.msg as usize;
        if ev.kind == Kind::Deliver {
            if ev.gen != delivery_gen[mi] {
                continue; // superseded by a final-hop split
            }
            // Deliveries within EPS of each other process as one group: the
            // engines may disagree on their relative order, so dependents
            // they release are tainted and may not claim exact-tie windows.
            group.clear();
            group.push((mi, ev.at.0));
            let mut window_end = ev.at.0 + EPS;
            while let Some(top) = heap.peek() {
                if top.at.0 > window_end {
                    break;
                }
                let e = heap.pop().expect("peeked");
                match e.kind {
                    Kind::Deliver if e.gen == delivery_gen[e.msg as usize] => {
                        window_end = window_end.max(e.at.0 + EPS);
                        group.push((e.msg as usize, e.at.0));
                    }
                    Kind::Deliver => {} // stale: drop
                    Kind::Arrive => stash.push(e),
                }
            }
            for e in stash.drain(..) {
                heap.push(e);
            }
            let taint = group.len() > 1;
            for &(gi, done) in &group {
                completed[gi] = true;
                completion[gi] = done;
                delivered += 1;
                last_progress = last_progress.max(done);
                if T::ENABLED {
                    sink.record(TraceEvent::Deliver {
                        msg: messages[gi].id,
                        bytes: messages[gi].bytes,
                        at_ns: done,
                    });
                }
                for &d in &dep_flat[dep_off[gi] as usize..dep_off[gi + 1] as usize] {
                    let di = d as usize;
                    earliest[di] = earliest[di].max(done);
                    pending_deps[di] -= 1;
                    if pending_deps[di] == 0 {
                        if taint {
                            tie_ok[di] = false;
                        }
                        if blocked[di] {
                            stalled += 1;
                        } else {
                            inject(&mut heap, &mut seq, sink, di, earliest[di]);
                        }
                        injected += 1;
                    }
                }
            }
            continue;
        }

        // Kind::Arrive: the train's head reaches hop `ev.hop`.
        let route = &routes[mi];
        let j = ev.hop as usize;
        let link = route[j];
        let li = link.index();
        let total = messages[mi].bytes;
        let pcount = pcount_of[mi];
        // Hop-0 curves are implicitly the constant injection instant (never
        // materialized); deeper hops read the stored curve. Bit-exact
        // equality is deliberate: a tie is only provable when both engines
        // compute the identical instant.
        let a_last = if ev.hop == 0 {
            ev.at.0
        } else {
            eval(&curves[mi], pcount - 1)
        };
        let flat_instant = a_last == ev.at.0;

        let full_bytes = if pcount > 1 { cfg.packet_bytes } else { total };
        let last_bytes = last_packet_bytes(cfg, total, pcount);
        let ser_full = full_bytes as f64 / bw[li];
        let ser_last = last_bytes as f64 / bw[li];
        let s = ser_full + ovh;

        let mut tie_append = false;
        if links[li].used && ev.at.0 <= links[li].last_event {
            tie_append = ev.at.0 == links[li].last_event
                && ev.hop == 0
                && flat_instant
                && links[li].tie_head
                && tie_ok[mi];
            if !tie_append {
                // --- FIFO train split: serve this flat train between two of
                // the owner's packet arrivals, re-serving the owner's tail
                // behind it. Every unprovable shape declines. ---
                if links[li].split || !flat_instant || links[li].owner_arr.is_empty() {
                    return Ok(Coalesce::Contended);
                }
                let am = links[li].owner as usize;
                let a_hop = links[li].owner_hop;
                let a_final = (a_hop as usize) + 1 == routes[am].len();
                // The owner's downstream bookkeeping must still be pending
                // (its next-hop event or delivery not yet processed).
                let amendable = if a_final {
                    !completed[am]
                } else {
                    !curves[am].is_empty() && pending_hop[am] == a_hop + 1
                };
                if !amendable {
                    return Ok(Coalesce::Contended);
                }
                let t = ev.at.0;
                let a0 = eval(&links[li].owner_arr, 0);
                if t <= a0 + EPS || t >= links[li].last_event - EPS {
                    return Ok(Coalesce::Contended);
                }
                let a_total = messages[am].bytes;
                let a_pcount = pcount_of[am];
                // Smallest owner packet index arriving strictly after `t`.
                let (mut lo, mut hi) = (0u64, a_pcount - 1);
                while lo + 1 < hi {
                    let mid = lo + (hi - lo) / 2;
                    if eval(&links[li].owner_arr, mid) > t {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                let k_a = hi;
                // The head must land cleanly between two arrivals, else the
                // per-packet FIFO order at the boundary is ambiguous.
                if eval(&links[li].owner_arr, k_a) <= t + EPS
                    || eval(&links[li].owner_arr, k_a - 1) >= t - EPS
                {
                    return Ok(Coalesce::Contended);
                }

                let st = std::mem::take(&mut links[li]);
                let a_last_bytes = last_packet_bytes(cfg, a_total, a_pcount);
                let a_ser_full = cfg.packet_bytes as f64 / bw[li];
                let a_ser_last = a_last_bytes as f64 / bw[li];
                let a_s = a_ser_full + ovh;

                // The interloper's head queues behind owner packet k_a - 1
                // (always a full packet, since k_a < a_pcount).
                let free_head = eval(&st.owner_starts, k_a - 1) + a_s;
                let st0_b = t.max(free_head);
                let starts_b = vec![Seg {
                    k0: 0,
                    t: st0_b,
                    slope: if pcount > 1 { s } else { 0.0 },
                }];
                let b_last_start = eval(&starts_b, pcount - 1);
                let free_after_b = b_last_start + ser_last + ovh;

                // Re-serve the owner's tail behind the interloper.
                let tail_len = a_pcount - k_a;
                let arr_tail = slice_curve(&st.owner_arr, k_a, a_pcount);
                let st0_tail = eval(&arr_tail, 0).max(free_after_b);
                let starts_tail = if tail_len == 1 {
                    vec![Seg {
                        k0: 0,
                        t: st0_tail,
                        slope: 0.0,
                    }]
                } else {
                    serve_curve(st0_tail, a_s, &arr_tail, tail_len)
                };
                let a_new_last = eval(&starts_tail, tail_len - 1);
                let free_final = a_new_last + a_ser_last + ovh;

                if a_final {
                    // Supersede the owner's queued delivery.
                    delivery_gen[am] += 1;
                    seq += 1;
                    heap.push(Event {
                        at: Time(a_new_last + a_ser_last + hop_lat),
                        seq,
                        kind: Kind::Deliver,
                        msg: am as u32,
                        hop: a_hop,
                        gen: delivery_gen[am],
                    });
                } else {
                    // Amend the owner's pending next-hop arrival curve. Its
                    // head start is unchanged (k_a ≥ 1), so the queued heap
                    // event's time stays valid.
                    let mut amended: Vec<Seg> = Vec::new();
                    for sg in st.owner_starts.iter().filter(|sg| sg.k0 < k_a) {
                        push_seg(
                            &mut amended,
                            Seg {
                                t: sg.t + hop_lat,
                                ..*sg
                            },
                        );
                    }
                    for sg in &starts_tail {
                        push_seg(
                            &mut amended,
                            Seg {
                                k0: sg.k0 + k_a,
                                t: sg.t + hop_lat,
                                slope: sg.slope,
                            },
                        );
                    }
                    curves[am] = amended;
                }

                // The owner's per-link busy time is order-independent and
                // was accounted at its commit; only the interloper adds.
                stats.add_busy(link, (pcount - 1) as f64 * s + ser_last + ovh);
                if T::ENABLED {
                    sink.record(TraceEvent::TrainSplit {
                        msg: messages[am].id,
                        hop: u32::from(a_hop),
                        link,
                        split_index: k_a,
                        first_start_ns: eval(&st.owner_starts, 0),
                        last_start_ns: a_new_last,
                    });
                    sink.record(TraceEvent::TrainHop {
                        msg: messages[mi].id,
                        hop: u32::from(ev.hop),
                        link,
                        packets: pcount,
                        arrive_ns: t,
                        first_start_ns: st0_b,
                        last_start_ns: b_last_start,
                    });
                }
                links[li] = LinkState {
                    free: free_final,
                    last_event: st.last_event,
                    used: true,
                    tie_head: false,
                    split: true,
                    ..LinkState::default()
                };

                // Advance the interloper.
                if j + 1 < route.len() {
                    let next = &mut curves[mi];
                    next.clear();
                    next.extend(starts_b.iter().map(|sg| Seg {
                        t: sg.t + hop_lat,
                        ..*sg
                    }));
                    pending_hop[mi] = ev.hop + 1;
                    seq += 1;
                    heap.push(Event {
                        at: Time(st0_b + hop_lat),
                        seq,
                        kind: Kind::Arrive,
                        msg: ev.msg,
                        hop: ev.hop + 1,
                        gen: 0,
                    });
                } else {
                    curves[mi].clear();
                    seq += 1;
                    heap.push(Event {
                        at: Time(b_last_start + ser_last + hop_lat),
                        seq,
                        kind: Kind::Deliver,
                        msg: ev.msg,
                        hop: ev.hop,
                        gen: delivery_gen[mi],
                    });
                }
                continue;
            }
        } else if links[li].used && ev.at.0 - links[li].last_event <= EPS {
            // Near-tie just past the window: the engines may disagree on
            // which head goes first.
            return Ok(Coalesce::Contended);
        }

        // Serial commit: the train owns the link after everything already
        // committed (tie appends land here too — `free` points behind the
        // tying window, which is exactly the per-packet FIFO order).
        let st0 = ev.at.0.max(links[li].free);
        starts.clear();
        if pcount == 1 {
            starts.push(Seg {
                k0: 0,
                t: st0,
                slope: 0.0,
            });
        } else if ev.hop == 0 {
            // Flat arrivals: the train queues behind `st0` at service
            // spacing — the recurrence degenerates to one burst segment.
            starts.push(Seg {
                k0: 0,
                t: st0,
                slope: s,
            });
        } else {
            let arr = &curves[mi];
            let (a0, m) = (arr[0].t, arr[0].slope);
            if arr.len() == 1 && (m <= s || st0 == a0) {
                // Single arrival segment that either never overtakes the
                // service line (m ≤ s ⇒ queued throughout) or is followed
                // from packet 0 (head started on time with m ≥ s): one
                // output segment, computed without the general walk.
                starts.push(Seg {
                    k0: 0,
                    t: st0,
                    slope: if m > s { m } else { s },
                });
            } else {
                serve_curve_into(st0, s, arr, pcount, &mut starts);
            }
        }
        let start_last = eval(&starts, pcount - 1);

        stats.add_busy(link, (pcount - 1) as f64 * s + ser_last + ovh);
        if T::ENABLED {
            sink.record(TraceEvent::TrainHop {
                msg: messages[mi].id,
                hop: u32::from(ev.hop),
                link,
                packets: pcount,
                arrive_ns: ev.at.0,
                first_start_ns: st0,
                last_start_ns: start_last,
            });
        }

        {
            let stl = &mut links[li];
            stl.free = start_last + ser_last + ovh;
            stl.used = true;
            if !tie_append {
                stl.last_event = a_last;
                stl.tie_head = ev.hop == 0 && flat_instant && tie_ok[mi];
                stl.split = false;
                if flat_instant {
                    // Flat windows have no strict interior to split at.
                    stl.owner_arr.clear();
                    stl.owner_starts.clear();
                } else {
                    stl.owner = ev.msg;
                    stl.owner_hop = ev.hop;
                    stl.owner_arr.clear();
                    stl.owner_arr.extend_from_slice(&curves[mi]);
                    stl.owner_starts.clear();
                    stl.owner_starts.extend_from_slice(&starts);
                }
            }
            // On a tie append the window instant, tie_head, and cleared
            // owner fields all carry over unchanged.
        }

        if j + 1 < route.len() {
            // Cut-through: each packet's header reaches the next router one
            // per-flit latency after it wins this link.
            let next_at = st0 + hop_lat;
            let next = &mut curves[mi];
            next.clear();
            next.extend(starts.iter().map(|sg| Seg {
                t: sg.t + hop_lat,
                ..*sg
            }));
            pending_hop[mi] = ev.hop + 1;
            seq += 1;
            heap.push(Event {
                at: Time(next_at),
                seq,
                kind: Kind::Arrive,
                msg: ev.msg,
                hop: ev.hop + 1,
                gen: 0,
            });
        } else {
            // Final hop: the train's last packet is delivered after its full
            // serialization plus the hop latency. Delivery (and dependent
            // release) goes through the heap so it happens in global time
            // order — matching the per-packet engine's injection order.
            // Release the curve so the split amendability probe can't
            // mistake the stale state for a pending next-hop curve.
            curves[mi].clear();
            let done = start_last + ser_last + hop_lat;
            seq += 1;
            heap.push(Event {
                at: Time(done),
                seq,
                kind: Kind::Deliver,
                msg: ev.msg,
                hop: ev.hop,
                gen: delivery_gen[mi],
            });
        }
    }

    if stalled > 0 {
        let culprit = blocked.iter().position(|&b| b);
        let culprit_link = culprit.and_then(|i| {
            routes[i]
                .iter()
                .copied()
                .find(|&l| !cfg.faults.link_usable(mesh, l))
        });
        return Err(NocError::Stalled {
            pending_msgs: n - delivered,
            last_progress_ns: last_progress as u64,
            first_blocked_msg: culprit.map(crate::MsgId),
            first_blocked_link: culprit_link,
            stalled_at_ns: last_progress as u64,
        });
    }
    if injected < n {
        return Err(NocError::DependencyCycle {
            stuck: n - injected,
        });
    }
    Ok(Coalesce::Done(SimOutcome::new(completion, stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshcoll_util::Rng;

    fn seg(k0: u64, t: f64, slope: f64) -> Seg {
        Seg { k0, t, slope }
    }

    /// The recurrence, computed packet by packet.
    fn brute_serve(st0: f64, s: f64, arr: &[Seg], pcount: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(pcount as usize);
        out.push(st0);
        for k in 1..pcount {
            let prev = out[(k - 1) as usize];
            out.push((prev + s).max(eval(arr, k)));
        }
        out
    }

    #[test]
    fn eval_walks_segments() {
        let c = vec![seg(0, 10.0, 2.0), seg(4, 18.0, 5.0)];
        assert_eq!(eval(&c, 0), 10.0);
        assert_eq!(eval(&c, 3), 16.0);
        assert_eq!(eval(&c, 4), 18.0);
        assert_eq!(eval(&c, 6), 28.0);
    }

    #[test]
    fn burst_line_dominates_slow_arrivals() {
        // Arrivals spaced 1 ns, service 5 ns: the queue line wins everywhere.
        let arr = vec![seg(0, 0.0, 1.0)];
        let out = serve_curve(0.0, 5.0, &arr, 100);
        assert_eq!(out.len(), 1);
        assert_eq!(eval(&out, 99), 495.0);
    }

    #[test]
    fn fast_arrivals_overtake_burst_line() {
        // Head waited (st0 = 100) but arrivals stream at 10 ns spacing with
        // only 2 ns service: packets 0..=45 drain the backlog, then starts
        // track arrivals.
        let arr = vec![seg(0, 0.0, 10.0)];
        let out = serve_curve(100.0, 2.0, &arr, 1000);
        assert_eq!(out.len(), 2);
        let cross = out[1].k0;
        // Before the crossing the queue line rules, after it the arrivals.
        assert!(eval(&arr, cross) > 100.0 + cross as f64 * 2.0);
        assert!(eval(&arr, cross - 1) <= 100.0 + (cross - 1) as f64 * 2.0);
        assert_eq!(eval(&out, 999), eval(&arr, 999));
    }

    #[test]
    fn crossing_respects_later_segments() {
        // Arrival curve flat then steep; crossing falls in the steep tail.
        let arr = vec![seg(0, 0.0, 0.0), seg(10, 0.0, 20.0)];
        let out = serve_curve(5.0, 3.0, &arr, 40);
        let cross = out[1].k0;
        assert!(cross > 10, "cross={cross}");
        for k in [cross - 1, cross, cross + 1, 39] {
            let expect = (5.0 + k as f64 * 3.0).max(eval(&arr, k));
            assert!((eval(&out, k) - expect).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn serve_curve_handles_nonconvex_steps() {
        // A post-split shape: arrivals ramp, jump upward (the interloper's
        // service gap), then ramp again — non-convex, with the queue
        // emptying and refilling across the step.
        let arr = vec![seg(0, 0.0, 4.0), seg(5, 100.0, 4.0), seg(9, 130.0, 1.0)];
        let st0 = 10.0;
        let s = 3.0;
        let out = serve_curve(st0, s, &arr, 14);
        let brute = brute_serve(st0, s, &arr, 14);
        for (k, want) in brute.iter().enumerate() {
            let got = eval(&out, k as u64);
            assert!((got - want).abs() < 1e-9, "k={k}: got {got}, want {want}");
        }
    }

    #[test]
    fn serve_curve_matches_bruteforce_on_random_monotone_curves() {
        let mut rng = Rng::new(0x5eed);
        for case in 0..200 {
            // Random monotone non-decreasing arrival curve with upward
            // jumps at segment boundaries.
            let nsegs = rng.range_usize(1, 5);
            let pcount = rng.range_u64(1, 60);
            let mut arr = Vec::new();
            let mut k0 = 0u64;
            let mut t = rng.range_f64(0.0, 50.0);
            for i in 0..nsegs {
                let slope = rng.range_f64(0.0, 8.0);
                arr.push(seg(k0, t, slope));
                let span = rng.range_u64(1, 20);
                t = eval(&arr, k0 + span - 1) + rng.range_f64(0.0, 30.0);
                k0 += span;
                if i + 1 < nsegs && k0 >= pcount {
                    break;
                }
            }
            let s = rng.range_f64(0.1, 6.0);
            let st0 = eval(&arr, 0) + rng.range_f64(0.0, 40.0);
            let out = serve_curve(st0, s, &arr, pcount);
            let brute = brute_serve(st0, s, &arr, pcount);
            for (k, want) in brute.iter().enumerate() {
                let got = eval(&out, k as u64);
                assert!(
                    (got - want).abs() < 1e-9,
                    "case {case}, k={k}: got {got}, want {want} (arr={arr:?}, s={s}, st0={st0})"
                );
            }
            // Starts must be monotone with at least service spacing.
            for k in 1..pcount {
                assert!(eval(&out, k) >= eval(&out, k - 1) + s - 1e-9);
            }
        }
    }

    #[test]
    fn slice_curve_reindexes_the_tail() {
        let arr = vec![seg(0, 0.0, 2.0), seg(6, 20.0, 5.0), seg(10, 50.0, 1.0)];
        let tail = slice_curve(&arr, 8, 14);
        assert_eq!(tail[0].k0, 0);
        for k in 8..14u64 {
            assert!((eval(&tail, k - 8) - eval(&arr, k)).abs() < 1e-12, "k={k}");
        }
        // Slicing exactly at a segment boundary keeps it minimal.
        let at_boundary = slice_curve(&arr, 6, 14);
        assert_eq!(at_boundary.len(), 2);
        assert_eq!(at_boundary[0].t, 20.0);
    }
}
