//! Trace-level invariant auditing for the network engines.
//!
//! The [`InvariantAuditor`] consumes the [`TraceEvent`] stream of a run
//! (collected through a [`MemorySink`](crate::trace::MemorySink)) and checks
//! the physical invariants every correct simulation must satisfy:
//!
//! * **Conservation** — every injected message is delivered, with the same
//!   byte count, and in the per-packet engine every hop of the route sees
//!   exactly the injected packet count and byte total (nothing is lost or
//!   duplicated mid-route).
//! * **Causality** — no packet wins a link before it arrives there, no
//!   link's busy interval ends before it starts, and a packet cannot reach
//!   hop `h+1` before it started crossing hop `h`.
//! * **Link exclusivity** — in the per-packet engine, the busy intervals
//!   committed on one directed link never overlap (each link serves one
//!   packet at a time).
//! * **Fast-path lower bound** — comparing a fast-path trace against the
//!   per-packet reference trace of the same DAG, no train's start curve may
//!   precede the reference engine's packet starts, and deliveries must
//!   agree (see [`InvariantAuditor::check_fast_path`]).
//!
//! All comparisons use a configurable absolute tolerance (default 1e-6 ns,
//! the same bound the equivalence suites enforce) so floating-point
//! reassociation between the two engines is not reported as a violation.
//! Schedule-level conformance (dependencies, reduce in-degree, the
//! AllReduce post-condition) lives above the NoC, in `meshcoll-sim`.

use std::collections::HashMap;
use std::fmt;

use meshcoll_topo::LinkId;

use crate::trace::TraceEvent;
use crate::MsgId;

/// Default audit tolerance, ns — matches the fast-path equivalence bound.
pub const DEFAULT_TOLERANCE_NS: f64 = 1e-6;

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// An injected message never delivered.
    MissingDelivery {
        /// The undelivered message.
        msg: MsgId,
    },
    /// A message delivered a different byte count than it injected.
    Conservation {
        /// The message.
        msg: MsgId,
        /// Bytes injected at the source.
        injected: u64,
        /// Bytes delivered at the destination.
        delivered: u64,
    },
    /// A hop of a message's route saw the wrong packet count or byte total.
    PacketLoss {
        /// The message.
        msg: MsgId,
        /// The hop with the mismatch.
        hop: u32,
        /// Packets observed at this hop.
        packets_seen: u64,
        /// Packets injected.
        packets_injected: u64,
    },
    /// A packet (or train head) won a link before arriving at it, or its
    /// busy interval ended before it started.
    Causality {
        /// The message.
        msg: MsgId,
        /// Packet index (0 for train-level events).
        packet: u64,
        /// The offending hop.
        hop: u32,
        /// Arrival time, ns.
        arrive_ns: f64,
        /// Link-win time, ns.
        start_ns: f64,
    },
    /// A packet arrived at hop `h+1` before it started crossing hop `h`.
    HopOrder {
        /// The message.
        msg: MsgId,
        /// Packet index.
        packet: u64,
        /// The later hop (`h+1`).
        hop: u32,
        /// Start time at hop `h`, ns.
        prev_start_ns: f64,
        /// Arrival time at hop `h+1`, ns.
        arrive_ns: f64,
    },
    /// Two packets' busy intervals overlap on one directed link.
    LinkOverlap {
        /// The shared link.
        link: LinkId,
        /// The packet holding the link.
        first: (MsgId, u64),
        /// The packet that started before the link freed.
        second: (MsgId, u64),
        /// Overlap length, ns.
        overlap_ns: f64,
    },
    /// A fast-path train start precedes its per-packet lower bound.
    FastPathEarly {
        /// The message (train).
        msg: MsgId,
        /// The hop where the curve undercuts the reference.
        hop: u32,
        /// Fast-path start, ns.
        fast_ns: f64,
        /// Per-packet reference start, ns.
        reference_ns: f64,
    },
    /// Fast-path and per-packet delivery times disagree beyond tolerance.
    DeliveryMismatch {
        /// The message.
        msg: MsgId,
        /// Fast-path delivery, ns.
        fast_ns: f64,
        /// Per-packet reference delivery, ns.
        reference_ns: f64,
    },
    /// A simulated makespan undercuts a certified static lower bound —
    /// either the engine teleported bytes or the bound derivation is wrong.
    MakespanBelowBound {
        /// Simulated makespan, ns.
        makespan_ns: f64,
        /// The static lower bound it undercuts, ns.
        bound_ns: f64,
    },
    /// Online byte accounting broke for one message: a delivered message
    /// also dropped packets, or a lost message's drops exceed its injection
    /// (every injected byte must end up delivered or dropped, never both,
    /// never more).
    DropAccounting {
        /// The message.
        msg: MsgId,
        /// Bytes injected.
        injected: u64,
        /// Bytes delivered (0 when undelivered).
        delivered: u64,
        /// Bytes dropped in flight.
        dropped: u64,
    },
    /// A [`TraceEvent::Drain`] summary disagrees with the drops actually
    /// recorded in its segment.
    DrainMismatch {
        /// Bytes the drain event claims were lost.
        lost_bytes: u64,
        /// Bytes the segment's drop events account for.
        dropped_bytes: u64,
    },
    /// An event of a resumed segment precedes the splice point: the online
    /// orchestration let repaired-suffix traffic start before the drain
    /// plus charged repair latency.
    SpliceCausality {
        /// The offending event's time, ns.
        at_ns: f64,
        /// The governing resume time, ns.
        resume_ns: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingDelivery { msg } => write!(f, "{msg} injected but never delivered"),
            Violation::Conservation {
                msg,
                injected,
                delivered,
            } => write!(f, "{msg} injected {injected} B but delivered {delivered} B"),
            Violation::PacketLoss {
                msg,
                hop,
                packets_seen,
                packets_injected,
            } => write!(
                f,
                "{msg} hop {hop} saw {packets_seen} packets, injected {packets_injected}"
            ),
            Violation::Causality {
                msg,
                packet,
                hop,
                arrive_ns,
                start_ns,
            } => write!(
                f,
                "{msg} packet {packet} hop {hop} starts at {start_ns} ns before arriving at {arrive_ns} ns"
            ),
            Violation::HopOrder {
                msg,
                packet,
                hop,
                prev_start_ns,
                arrive_ns,
            } => write!(
                f,
                "{msg} packet {packet} reaches hop {hop} at {arrive_ns} ns before starting hop {} at {prev_start_ns} ns",
                hop - 1
            ),
            Violation::LinkOverlap {
                link,
                first,
                second,
                overlap_ns,
            } => write!(
                f,
                "link {link:?}: {} packet {} overlaps {} packet {} by {overlap_ns} ns",
                first.0, first.1, second.0, second.1
            ),
            Violation::FastPathEarly {
                msg,
                hop,
                fast_ns,
                reference_ns,
            } => write!(
                f,
                "{msg} hop {hop}: fast-path start {fast_ns} ns precedes per-packet {reference_ns} ns"
            ),
            Violation::DeliveryMismatch {
                msg,
                fast_ns,
                reference_ns,
            } => write!(
                f,
                "{msg}: fast-path delivery {fast_ns} ns vs per-packet {reference_ns} ns"
            ),
            Violation::MakespanBelowBound {
                makespan_ns,
                bound_ns,
            } => write!(
                f,
                "simulated makespan {makespan_ns} ns undercuts static lower bound {bound_ns} ns"
            ),
            Violation::DropAccounting {
                msg,
                injected,
                delivered,
                dropped,
            } => write!(
                f,
                "{msg} injected {injected} B but delivered {delivered} B and dropped {dropped} B"
            ),
            Violation::DrainMismatch {
                lost_bytes,
                dropped_bytes,
            } => write!(
                f,
                "drain claims {lost_bytes} B lost but drop events account for {dropped_bytes} B"
            ),
            Violation::SpliceCausality { at_ns, resume_ns } => write!(
                f,
                "event at {at_ns} ns precedes the governing resume at {resume_ns} ns"
            ),
        }
    }
}

/// Result of auditing one trace: how many individual comparisons ran and
/// every violation found.
#[derive(Debug, Clone, Default)]
pub struct TraceAudit {
    /// Individual invariant comparisons performed.
    pub checks: usize,
    /// Violations found (empty for a correct engine).
    pub violations: Vec<Violation>,
}

impl TraceAudit {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-message byte accounting within one online-run segment, reset at each
/// [`TraceEvent::Resume`] marker by
/// [`InvariantAuditor::check_online_trace`].
#[derive(Default)]
struct SegMsg {
    injected: Option<u64>,
    delivered: Option<u64>,
    dropped: u64,
}

#[derive(Default)]
struct MsgLedger {
    injected_bytes: u64,
    injected_packets: u64,
    injected: bool,
    delivered_bytes: Option<u64>,
    deliver_ns: f64,
    /// Bytes dropped mid-route by an online fault arrival.
    dropped_bytes: u64,
    /// Per hop: (packets seen, bytes seen).
    hops: Vec<(u64, u64)>,
}

/// Checks the engine invariants over recorded traces. See the module docs
/// for the invariant catalogue.
#[derive(Debug, Clone, Copy)]
pub struct InvariantAuditor {
    /// Absolute comparison tolerance, ns.
    pub tolerance_ns: f64,
}

impl Default for InvariantAuditor {
    fn default() -> Self {
        InvariantAuditor {
            tolerance_ns: DEFAULT_TOLERANCE_NS,
        }
    }
}

impl InvariantAuditor {
    /// An auditor at the default 1e-6 ns tolerance.
    pub fn new() -> Self {
        InvariantAuditor::default()
    }

    /// Audits one engine trace: conservation, causality, and (for
    /// per-packet traces) link exclusivity.
    pub fn check_trace(&self, events: &[TraceEvent]) -> TraceAudit {
        let tol = self.tolerance_ns;
        let mut audit = TraceAudit::default();
        let mut ledger: HashMap<usize, MsgLedger> = HashMap::new();
        // (start, busy_until, msg, packet) per link, for exclusivity.
        let mut intervals: HashMap<usize, Vec<(f64, f64, MsgId, u64)>> = HashMap::new();
        // Last start per (msg, packet) to order consecutive hops.
        let mut last_start: HashMap<(usize, u64), (u32, f64)> = HashMap::new();

        for ev in events {
            match *ev {
                TraceEvent::Inject {
                    msg,
                    bytes,
                    packets,
                    ..
                } => {
                    let l = ledger.entry(msg.index()).or_default();
                    l.injected = true;
                    l.injected_bytes = bytes;
                    l.injected_packets = packets;
                }
                TraceEvent::PacketHop {
                    msg,
                    packet,
                    hop,
                    link,
                    bytes,
                    arrive_ns,
                    start_ns,
                    busy_until_ns,
                } => {
                    audit.checks += 1;
                    if start_ns < arrive_ns - tol || busy_until_ns < start_ns - tol {
                        audit.violations.push(Violation::Causality {
                            msg,
                            packet,
                            hop,
                            arrive_ns,
                            start_ns,
                        });
                    }
                    if hop > 0 {
                        audit.checks += 1;
                        if let Some(&(ph, ps)) = last_start.get(&(msg.index(), packet)) {
                            if ph + 1 == hop && arrive_ns < ps - tol {
                                audit.violations.push(Violation::HopOrder {
                                    msg,
                                    packet,
                                    hop,
                                    prev_start_ns: ps,
                                    arrive_ns,
                                });
                            }
                        }
                    }
                    last_start.insert((msg.index(), packet), (hop, start_ns));
                    let l = ledger.entry(msg.index()).or_default();
                    if l.hops.len() <= hop as usize {
                        l.hops.resize(hop as usize + 1, (0, 0));
                    }
                    l.hops[hop as usize].0 += 1;
                    l.hops[hop as usize].1 += bytes;
                    intervals.entry(link.index()).or_default().push((
                        start_ns,
                        busy_until_ns,
                        msg,
                        packet,
                    ));
                }
                TraceEvent::TrainHop {
                    msg,
                    hop,
                    arrive_ns,
                    first_start_ns,
                    last_start_ns,
                    packets,
                    ..
                } => {
                    audit.checks += 1;
                    if first_start_ns < arrive_ns - tol || last_start_ns < first_start_ns - tol {
                        audit.violations.push(Violation::Causality {
                            msg,
                            packet: 0,
                            hop,
                            arrive_ns,
                            start_ns: first_start_ns,
                        });
                    }
                    let l = ledger.entry(msg.index()).or_default();
                    if l.hops.len() <= hop as usize {
                        l.hops.resize(hop as usize + 1, (0, 0));
                    }
                    l.hops[hop as usize].0 += packets;
                    // Train events carry no per-hop byte total; mirror the
                    // injected bytes so the cross-hop check stays uniform.
                    l.hops[hop as usize].1 += l.injected_bytes;
                }
                TraceEvent::TrainSplit {
                    msg,
                    hop,
                    first_start_ns,
                    last_start_ns,
                    ..
                } => {
                    // Supersedes the matching TrainHop's tail timing; the
                    // packets and bytes were already counted there, so only
                    // the causal ordering is re-checked.
                    audit.checks += 1;
                    if last_start_ns < first_start_ns - tol {
                        audit.violations.push(Violation::Causality {
                            msg,
                            packet: 0,
                            hop,
                            arrive_ns: first_start_ns,
                            start_ns: last_start_ns,
                        });
                    }
                }
                TraceEvent::Deliver { msg, bytes, at_ns } => {
                    let l = ledger.entry(msg.index()).or_default();
                    l.delivered_bytes = Some(bytes);
                    l.deliver_ns = at_ns;
                }
                // Online-run events: the legacy single-segment audit treats
                // markers as inert and tolerates drops (an interrupted run is
                // audited with `check_online_trace`, which accounts for them).
                TraceEvent::PacketDrop { msg, bytes, .. } => {
                    let l = ledger.entry(msg.index()).or_default();
                    l.dropped_bytes += bytes;
                }
                TraceEvent::Reduce { .. }
                | TraceEvent::FaultArrival { .. }
                | TraceEvent::Drain { .. }
                | TraceEvent::Resume { .. } => {}
            }
        }

        for (mi, l) in &ledger {
            let msg = MsgId(*mi);
            audit.checks += 1;
            match l.delivered_bytes {
                None if l.dropped_bytes == 0 => {
                    audit.violations.push(Violation::MissingDelivery { msg });
                }
                Some(d) if l.injected && d != l.injected_bytes => {
                    audit.violations.push(Violation::Conservation {
                        msg,
                        injected: l.injected_bytes,
                        delivered: d,
                    });
                }
                _ => {}
            }
            // Every hop of the route must carry the full message. A message
            // partially dropped by an online fault legitimately thins out
            // downstream, so the per-hop census only applies to clean runs.
            for (hop, &(pk, by)) in l.hops.iter().enumerate() {
                if l.dropped_bytes > 0 {
                    break;
                }
                audit.checks += 1;
                if l.injected && (pk != l.injected_packets || by != l.injected_bytes) {
                    audit.violations.push(Violation::PacketLoss {
                        msg,
                        hop: hop as u32,
                        packets_seen: pk,
                        packets_injected: l.injected_packets,
                    });
                }
            }
        }

        // Link exclusivity: sort each link's busy intervals by start and
        // require them pairwise disjoint.
        for (_, mut iv) in intervals {
            iv.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in iv.windows(2) {
                audit.checks += 1;
                let (_, prev_end, pm, pp) = w[0];
                let (next_start, _, nm, np) = w[1];
                if next_start < prev_end - tol {
                    audit.violations.push(Violation::LinkOverlap {
                        link: link_of(events, pm, pp).unwrap_or(LinkId(0)),
                        first: (pm, pp),
                        second: (nm, np),
                        overlap_ns: prev_end - next_start,
                    });
                }
            }
        }
        audit
    }

    /// Audits the spliced trace of an online run (interrupted prefix, then
    /// one segment per repaired suffix, separated by
    /// [`TraceEvent::Resume`] markers). Message ids restart at 0 in every
    /// segment, so per-message invariants reset at each splice point while
    /// the physical invariants span the whole stream:
    ///
    /// * **Online conservation** (per segment) — a delivered message
    ///   delivers exactly its injected bytes and drops nothing; an
    ///   injected-but-undelivered message accounts for the interruption
    ///   with at least one drop (a packet never dropped always arrives),
    ///   and never drops more than it injected. Each segment's
    ///   [`TraceEvent::Drain`] summary must equal the drops it recorded.
    /// * **Drop causality** (per segment) — a packet drops at or after its
    ///   last link win, at the hop following it, and every hop's win time
    ///   respects arrival order as in [`InvariantAuditor::check_trace`].
    /// * **Splice causality** (whole stream) — every event after a
    ///   [`TraceEvent::Resume`] occurs at or after its resume time: repair
    ///   latency is charged before any suffix traffic moves.
    /// * **Link exclusivity** (whole stream) — busy intervals on one
    ///   directed link stay pairwise disjoint *across* segments: resumed
    ///   traffic may not overlap the drained prefix's tail occupancies.
    pub fn check_online_trace(&self, events: &[TraceEvent]) -> TraceAudit {
        let tol = self.tolerance_ns;
        let mut audit = TraceAudit::default();
        // Whole-stream state.
        let mut intervals: HashMap<usize, Vec<(f64, f64, MsgId, u64)>> = HashMap::new();
        let mut resume_ns = 0.0f64;
        // Per-segment state, reset at each Resume marker.
        let mut ledger: HashMap<usize, SegMsg> = HashMap::new();
        let mut last_start: HashMap<(usize, u64), (u32, f64)> = HashMap::new();
        let mut seg_dropped: u64 = 0;

        let finalize = |audit: &mut TraceAudit, ledger: &mut HashMap<usize, SegMsg>| {
            for (mi, m) in ledger.drain() {
                let msg = MsgId(mi);
                audit.checks += 1;
                let injected = m.injected.unwrap_or(0);
                match m.delivered {
                    Some(d) => {
                        if m.dropped > 0 {
                            audit.violations.push(Violation::DropAccounting {
                                msg,
                                injected,
                                delivered: d,
                                dropped: m.dropped,
                            });
                        }
                        if m.injected.is_some() && d != injected {
                            audit.violations.push(Violation::Conservation {
                                msg,
                                injected,
                                delivered: d,
                            });
                        }
                    }
                    None if m.injected.is_some() => {
                        if m.dropped == 0 {
                            // No drop and no delivery: an undropped packet
                            // always arrives, so the message vanished.
                            audit.violations.push(Violation::MissingDelivery { msg });
                        } else if m.dropped > injected {
                            audit.violations.push(Violation::DropAccounting {
                                msg,
                                injected,
                                delivered: 0,
                                dropped: m.dropped,
                            });
                        }
                    }
                    None => {}
                }
            }
        };

        for ev in events {
            // Splice causality: nothing in a resumed segment may precede
            // its resume time.
            let at = event_time(ev);
            audit.checks += 1;
            if at < resume_ns - tol {
                audit.violations.push(Violation::SpliceCausality {
                    at_ns: at,
                    resume_ns,
                });
            }
            match *ev {
                TraceEvent::Inject { msg, bytes, .. } => {
                    ledger.entry(msg.index()).or_default().injected = Some(bytes);
                }
                TraceEvent::PacketHop {
                    msg,
                    packet,
                    hop,
                    link,
                    arrive_ns,
                    start_ns,
                    busy_until_ns,
                    ..
                } => {
                    audit.checks += 1;
                    if start_ns < arrive_ns - tol || busy_until_ns < start_ns - tol {
                        audit.violations.push(Violation::Causality {
                            msg,
                            packet,
                            hop,
                            arrive_ns,
                            start_ns,
                        });
                    }
                    last_start.insert((msg.index(), packet), (hop, start_ns));
                    intervals.entry(link.index()).or_default().push((
                        start_ns,
                        busy_until_ns,
                        msg,
                        packet,
                    ));
                }
                TraceEvent::PacketDrop {
                    msg,
                    packet,
                    hop,
                    bytes,
                    at_ns,
                    ..
                } => {
                    let m = ledger.entry(msg.index()).or_default();
                    m.dropped += bytes;
                    seg_dropped += bytes;
                    if let Some(&(ph, ps)) = last_start.get(&(msg.index(), packet)) {
                        audit.checks += 2;
                        if at_ns < ps - tol {
                            // A drop cannot precede the packet's last win.
                            audit.violations.push(Violation::Causality {
                                msg,
                                packet,
                                hop,
                                arrive_ns: at_ns,
                                start_ns: ps,
                            });
                        }
                        if hop != ph + 1 {
                            audit.violations.push(Violation::HopOrder {
                                msg,
                                packet,
                                hop: hop.max(1),
                                prev_start_ns: ps,
                                arrive_ns: at_ns,
                            });
                        }
                    }
                }
                TraceEvent::Deliver { msg, bytes, .. } => {
                    ledger.entry(msg.index()).or_default().delivered = Some(bytes);
                }
                TraceEvent::Drain { lost_bytes, .. } => {
                    audit.checks += 1;
                    if lost_bytes != seg_dropped {
                        audit.violations.push(Violation::DrainMismatch {
                            lost_bytes,
                            dropped_bytes: seg_dropped,
                        });
                    }
                }
                TraceEvent::Resume { at_ns, .. } => {
                    finalize(&mut audit, &mut ledger);
                    last_start.clear();
                    seg_dropped = 0;
                    resume_ns = resume_ns.max(at_ns);
                }
                _ => {}
            }
        }
        finalize(&mut audit, &mut ledger);

        // Link exclusivity across the whole spliced stream.
        for (_, mut iv) in intervals {
            iv.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in iv.windows(2) {
                audit.checks += 1;
                let (_, prev_end, pm, pp) = w[0];
                let (next_start, _, nm, np) = w[1];
                if next_start < prev_end - tol {
                    audit.violations.push(Violation::LinkOverlap {
                        link: link_of(events, pm, pp).unwrap_or(LinkId(0)),
                        first: (pm, pp),
                        second: (nm, np),
                        overlap_ns: prev_end - next_start,
                    });
                }
            }
        }
        audit
    }

    /// Checks the bound invariant *simulated makespan ≥ static lower
    /// bound*. The comparison allows the auditor's absolute tolerance plus
    /// a small relative slack, so the ns-scale float accumulation of a long
    /// run is not reported as a violation.
    pub fn check_makespan_bound(&self, makespan_ns: f64, bound_ns: f64) -> TraceAudit {
        let mut audit = TraceAudit {
            checks: 1,
            ..TraceAudit::default()
        };
        if makespan_ns < bound_ns * (1.0 - 1e-9) - self.tolerance_ns {
            audit.violations.push(Violation::MakespanBelowBound {
                makespan_ns,
                bound_ns,
            });
        }
        audit
    }

    /// Audits a fast-path trace against the per-packet reference trace of
    /// the same DAG: every train's first/last start must be at or after the
    /// reference engine's corresponding packet starts (the per-packet lower
    /// bound), and deliveries must agree within tolerance.
    pub fn check_fast_path(&self, fast: &[TraceEvent], reference: &[TraceEvent]) -> TraceAudit {
        let tol = self.tolerance_ns;
        let mut audit = TraceAudit::default();
        // Reference per (msg, hop): start of packet 0 and of the last packet.
        let mut ref_first: HashMap<(usize, u32), f64> = HashMap::new();
        let mut ref_last: HashMap<(usize, u32), (u64, f64)> = HashMap::new();
        let mut ref_deliver: HashMap<usize, f64> = HashMap::new();
        for ev in reference {
            match *ev {
                TraceEvent::PacketHop {
                    msg,
                    packet,
                    hop,
                    start_ns,
                    ..
                } => {
                    if packet == 0 {
                        ref_first.insert((msg.index(), hop), start_ns);
                    }
                    let e = ref_last.entry((msg.index(), hop)).or_insert((0, start_ns));
                    if packet >= e.0 {
                        *e = (packet, start_ns);
                    }
                }
                TraceEvent::Deliver { msg, at_ns, .. } => {
                    ref_deliver.insert(msg.index(), at_ns);
                }
                _ => {}
            }
        }
        // Fast-path per (msg, hop) first/last starts. A TrainSplit
        // supersedes the tail timing of the matching TrainHop (the split
        // re-serves the tail behind an interloper), so the maps are built
        // first and compared after.
        let mut fast_trains: HashMap<(usize, u32), (f64, f64)> = HashMap::new();
        for ev in fast {
            match *ev {
                TraceEvent::TrainHop {
                    msg,
                    hop,
                    first_start_ns,
                    last_start_ns,
                    ..
                } => {
                    fast_trains.insert((msg.index(), hop), (first_start_ns, last_start_ns));
                }
                TraceEvent::TrainSplit {
                    msg,
                    hop,
                    last_start_ns,
                    ..
                } => {
                    if let Some(e) = fast_trains.get_mut(&(msg.index(), hop)) {
                        e.1 = last_start_ns;
                    }
                }
                TraceEvent::Deliver { msg, at_ns, .. } => {
                    if let Some(&r) = ref_deliver.get(&msg.index()) {
                        audit.checks += 1;
                        if (at_ns - r).abs() > tol {
                            audit.violations.push(Violation::DeliveryMismatch {
                                msg,
                                fast_ns: at_ns,
                                reference_ns: r,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        for (&(mi, hop), &(first_start_ns, last_start_ns)) in &fast_trains {
            let msg = MsgId(mi);
            if let Some(&r0) = ref_first.get(&(mi, hop)) {
                audit.checks += 1;
                if first_start_ns < r0 - tol {
                    audit.violations.push(Violation::FastPathEarly {
                        msg,
                        hop,
                        fast_ns: first_start_ns,
                        reference_ns: r0,
                    });
                }
            }
            if let Some(&(_, rl)) = ref_last.get(&(mi, hop)) {
                audit.checks += 1;
                if last_start_ns < rl - tol {
                    audit.violations.push(Violation::FastPathEarly {
                        msg,
                        hop,
                        fast_ns: last_start_ns,
                        reference_ns: rl,
                    });
                }
            }
        }
        audit
    }
}

/// The primary timestamp of an event, for splice-causality ordering.
fn event_time(ev: &TraceEvent) -> f64 {
    match *ev {
        TraceEvent::Inject { at_ns, .. }
        | TraceEvent::Deliver { at_ns, .. }
        | TraceEvent::Reduce { at_ns, .. }
        | TraceEvent::FaultArrival { at_ns, .. }
        | TraceEvent::PacketDrop { at_ns, .. }
        | TraceEvent::Drain { at_ns, .. }
        | TraceEvent::Resume { at_ns, .. } => at_ns,
        TraceEvent::PacketHop { arrive_ns, .. } | TraceEvent::TrainHop { arrive_ns, .. } => {
            arrive_ns
        }
        TraceEvent::TrainSplit { first_start_ns, .. } => first_start_ns,
    }
}

/// The link a given (msg, packet) traversed, for overlap diagnostics.
fn link_of(events: &[TraceEvent], m: MsgId, p: u64) -> Option<LinkId> {
    events.iter().find_map(|e| match *e {
        TraceEvent::PacketHop {
            msg, packet, link, ..
        } if msg == m && packet == p => Some(link),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshcoll_topo::NodeId;

    fn inject(i: usize, bytes: u64, packets: u64, at: f64) -> TraceEvent {
        TraceEvent::Inject {
            msg: MsgId(i),
            src: NodeId(0),
            dst: NodeId(1),
            bytes,
            packets,
            at_ns: at,
        }
    }

    fn hop(
        i: usize,
        p: u64,
        h: u32,
        bytes: u64,
        arrive: f64,
        start: f64,
        until: f64,
    ) -> TraceEvent {
        TraceEvent::PacketHop {
            msg: MsgId(i),
            packet: p,
            hop: h,
            link: LinkId(0),
            bytes,
            arrive_ns: arrive,
            start_ns: start,
            busy_until_ns: until,
        }
    }

    fn deliver(i: usize, bytes: u64, at: f64) -> TraceEvent {
        TraceEvent::Deliver {
            msg: MsgId(i),
            bytes,
            at_ns: at,
        }
    }

    #[test]
    fn clean_trace_passes() {
        let a = InvariantAuditor::new();
        let events = vec![
            inject(0, 100, 1, 0.0),
            hop(0, 0, 0, 100, 0.0, 0.0, 25.0),
            deliver(0, 100, 46.0),
        ];
        let audit = a.check_trace(&events);
        assert!(audit.is_clean(), "{:?}", audit.violations);
        assert!(audit.checks >= 3);
    }

    #[test]
    fn missing_delivery_is_flagged() {
        let a = InvariantAuditor::new();
        let audit = a.check_trace(&[inject(0, 100, 1, 0.0)]);
        assert!(matches!(
            audit.violations[..],
            [Violation::MissingDelivery { msg: MsgId(0) }]
        ));
    }

    #[test]
    fn byte_mismatch_is_conservation_violation() {
        let a = InvariantAuditor::new();
        let audit = a.check_trace(&[
            inject(0, 100, 1, 0.0),
            hop(0, 0, 0, 100, 0.0, 0.0, 25.0),
            deliver(0, 64, 46.0),
        ]);
        assert!(audit.violations.iter().any(|v| matches!(
            v,
            Violation::Conservation {
                injected: 100,
                delivered: 64,
                ..
            }
        )));
    }

    #[test]
    fn lost_packet_is_flagged_per_hop() {
        let a = InvariantAuditor::new();
        // Two packets injected, only one crosses the link.
        let audit = a.check_trace(&[
            inject(0, 16384, 2, 0.0),
            hop(0, 0, 0, 8192, 0.0, 0.0, 348.0),
            deliver(0, 16384, 700.0),
        ]);
        assert!(audit.violations.iter().any(|v| matches!(
            v,
            Violation::PacketLoss {
                packets_seen: 1,
                ..
            }
        )));
    }

    #[test]
    fn start_before_arrival_is_causality_violation() {
        let a = InvariantAuditor::new();
        let audit = a.check_trace(&[
            inject(0, 100, 1, 0.0),
            hop(0, 0, 0, 100, 50.0, 40.0, 70.0),
            deliver(0, 100, 91.0),
        ]);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Causality { .. })));
    }

    #[test]
    fn overlapping_busy_intervals_are_flagged() {
        let a = InvariantAuditor::new();
        let audit = a.check_trace(&[
            inject(0, 100, 1, 0.0),
            inject(1, 100, 1, 0.0),
            hop(0, 0, 0, 100, 0.0, 0.0, 25.0),
            hop(1, 0, 0, 100, 0.0, 10.0, 35.0), // starts mid-occupancy
            deliver(0, 100, 46.0),
            deliver(1, 100, 56.0),
        ]);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LinkOverlap { .. })));
    }

    #[test]
    fn tolerance_suppresses_float_noise() {
        let a = InvariantAuditor::new();
        let audit = a.check_trace(&[
            inject(0, 100, 1, 0.0),
            // Start "before" arrival by well under the tolerance.
            hop(0, 0, 0, 100, 10.0, 10.0 - 1e-9, 35.0),
            deliver(0, 100, 56.0),
        ]);
        assert!(audit.is_clean(), "{:?}", audit.violations);
    }

    #[test]
    fn makespan_bound_invariant() {
        let a = InvariantAuditor::new();
        assert!(a.check_makespan_bound(1000.0, 900.0).is_clean());
        assert!(a.check_makespan_bound(1000.0, 1000.0).is_clean());
        // Sub-tolerance undercut is float noise, not a violation.
        assert!(a.check_makespan_bound(1000.0 - 1e-8, 1000.0).is_clean());
        let bad = a.check_makespan_bound(900.0, 1000.0);
        assert!(matches!(
            bad.violations[..],
            [Violation::MakespanBelowBound { .. }]
        ));
    }

    fn drop_ev(i: usize, p: u64, h: u32, bytes: u64, at: f64) -> TraceEvent {
        TraceEvent::PacketDrop {
            msg: MsgId(i),
            packet: p,
            hop: h,
            link: LinkId(0),
            bytes,
            at_ns: at,
        }
    }

    #[test]
    fn online_trace_clean_splice_passes() {
        let a = InvariantAuditor::new();
        let events = vec![
            // Prefix: one message delivers, one drops mid-route.
            inject(0, 100, 1, 0.0),
            hop(0, 0, 0, 100, 0.0, 0.0, 25.0),
            deliver(0, 100, 46.0),
            inject(1, 50, 1, 0.0),
            drop_ev(1, 0, 0, 50, 60.0),
            TraceEvent::FaultArrival {
                link: Some(LinkId(0)),
                node: None,
                at_ns: 60.0,
            },
            TraceEvent::Drain {
                at_ns: 60.0,
                lost_msgs: 1,
                lost_bytes: 50,
            },
            TraceEvent::Resume {
                at_ns: 100.0,
                suffix_msgs: 1,
            },
            // Suffix segment: ids restart at 0.
            inject(0, 50, 1, 100.0),
            hop(0, 0, 0, 50, 100.0, 100.0, 125.0),
            deliver(0, 50, 146.0),
        ];
        let audit = a.check_online_trace(&events);
        assert!(audit.is_clean(), "{:?}", audit.violations);
    }

    #[test]
    fn online_trace_flags_pre_resume_suffix_traffic() {
        let a = InvariantAuditor::new();
        let events = vec![
            TraceEvent::Resume {
                at_ns: 500.0,
                suffix_msgs: 1,
            },
            inject(0, 100, 1, 400.0), // starts before the resume point
            hop(0, 0, 0, 100, 400.0, 400.0, 425.0),
            deliver(0, 100, 446.0),
        ];
        let audit = a.check_online_trace(&events);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SpliceCausality { .. })));
    }

    #[test]
    fn online_trace_flags_vanished_message() {
        let a = InvariantAuditor::new();
        // Injected, never delivered, never dropped: bytes vanished.
        let audit = a.check_online_trace(&[inject(0, 100, 1, 0.0)]);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingDelivery { .. })));
    }

    #[test]
    fn online_trace_flags_delivered_message_with_drops() {
        let a = InvariantAuditor::new();
        let audit = a.check_online_trace(&[
            inject(0, 100, 2, 0.0),
            drop_ev(0, 1, 0, 50, 10.0),
            deliver(0, 100, 46.0),
        ]);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DropAccounting { .. })));
    }

    #[test]
    fn online_trace_flags_drain_summary_mismatch() {
        let a = InvariantAuditor::new();
        let audit = a.check_online_trace(&[
            inject(0, 100, 1, 0.0),
            drop_ev(0, 0, 0, 100, 10.0),
            TraceEvent::Drain {
                at_ns: 10.0,
                lost_msgs: 1,
                lost_bytes: 64, // should be 100
            },
        ]);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DrainMismatch { .. })));
    }

    #[test]
    fn online_trace_flags_cross_segment_link_overlap() {
        let a = InvariantAuditor::new();
        let events = vec![
            inject(0, 100, 1, 0.0),
            hop(0, 0, 0, 100, 0.0, 0.0, 500.0),
            deliver(0, 100, 46.0),
            TraceEvent::Resume {
                at_ns: 100.0,
                suffix_msgs: 1,
            },
            inject(0, 100, 1, 100.0),
            // Wins the same link while the prefix's tail still holds it.
            hop(0, 0, 0, 100, 100.0, 100.0, 525.0),
            deliver(0, 100, 146.0),
        ];
        let audit = a.check_online_trace(&events);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LinkOverlap { .. })));
    }

    #[test]
    fn fast_path_start_before_reference_is_flagged() {
        let a = InvariantAuditor::new();
        let reference = vec![
            inject(0, 8192, 1, 0.0),
            hop(0, 0, 0, 8192, 0.0, 100.0, 448.68),
            deliver(0, 8192, 469.0),
        ];
        let fast = vec![
            inject(0, 8192, 1, 0.0),
            TraceEvent::TrainHop {
                msg: MsgId(0),
                hop: 0,
                link: LinkId(0),
                packets: 1,
                arrive_ns: 0.0,
                first_start_ns: 50.0, // beats the reference's 100.0
                last_start_ns: 50.0,
            },
            deliver(0, 8192, 419.0),
        ];
        let audit = a.check_fast_path(&fast, &reference);
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FastPathEarly { .. })));
        assert!(audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DeliveryMismatch { .. })));
    }
}
