#![warn(missing_docs)]

//! On-package network simulators for mesh-based MCM accelerators.
//!
//! This crate is the BookSim substitute of the `meshcoll` stack: it models
//! the chiplet-to-chiplet interconnect of a multi-chip module as a 2D mesh
//! with XY dimension-order routing and virtual-cut-through flow control, at
//! the configuration the paper uses (Table II: 25 GB/s links, 8 KiB packets,
//! 512 B flits, 21 ns per-flit latency, 1 GHz routers, 4 VCs).
//!
//! Two engines share one input format ([`Message`] DAGs) and one output
//! format ([`SimOutcome`]):
//!
//! * [`PacketSim`] — an event-driven packet-granularity simulator. Packets
//!   traverse their XY route hop by hop; each directed link serializes the
//!   packets that contend for it and charges `packet_bytes / bandwidth`
//!   of busy time per packet plus a per-hop header latency. This is the
//!   primary engine: fast enough for GB-scale AllReduce sweeps while
//!   capturing bandwidth, hop latency, and link contention — the three
//!   effects the paper's results hinge on.
//! * [`FlitSim`] — a cycle-driven flit-level router model with per-VC input
//!   buffers, credit-based flow control, and virtual cut-through switching.
//!   It is slower and exists to validate the packet engine (tests assert the
//!   two agree on latency/bandwidth for small transfers).
//!
//! # Example
//!
//! ```
//! use meshcoll_noc::{Message, MsgId, NocConfig, PacketSim, NetworkSim};
//! use meshcoll_topo::{Mesh, NodeId};
//!
//! let mesh = Mesh::square(4)?;
//! let cfg = NocConfig::paper_default();
//! // One 1 MiB transfer across the mesh, then a dependent reply.
//! let msgs = vec![
//!     Message::new(MsgId(0), NodeId(0), NodeId(15), 1 << 20),
//!     Message::new(MsgId(1), NodeId(15), NodeId(0), 1 << 20).with_deps([MsgId(0)]),
//! ];
//! let outcome = PacketSim::new(cfg).run(&mesh, &msgs)?;
//! let reply = outcome.completion_ns(MsgId(1)).expect("simulated");
//! assert!(reply > outcome.completion_ns(MsgId(0)).expect("simulated"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Tracing and auditing
//!
//! Both engines can emit a structured event stream ([`TraceEvent`]) through
//! any [`TraceSink`] via `run_traced`/`simulate_traced`. The default
//! [`NullSink`] compiles the emission paths out entirely, so untraced runs
//! pay nothing. The [`InvariantAuditor`] replays a collected trace and
//! checks conservation, causality, and link exclusivity; see [`audit`].

pub mod audit;
mod coalesce;
mod config;
mod error;
mod flit_sim;
mod message;
pub mod online;
mod packet_sim;
mod stats;
pub mod trace;

pub use audit::{InvariantAuditor, TraceAudit, Violation};
pub use config::NocConfig;
pub use error::NocError;
pub use flit_sim::FlitSim;
pub use message::{Message, MsgId, MAX_MESSAGES};
pub use online::{splice_outcomes, DrainSnapshot, OnlineReport};
pub use packet_sim::{PacketSim, SimMode};
pub use stats::{LatencySummary, LinkStats, SimOutcome};
pub use trace::{JsonlSink, MemorySink, NullSink, RingSink, TraceEvent, TraceSink};

use meshcoll_topo::Mesh;

/// A network simulation engine: runs a DAG of [`Message`]s over a mesh and
/// reports completion times and link statistics.
///
/// Both [`PacketSim`] and [`FlitSim`] implement this trait, so experiment
/// code can be written engine-agnostically.
pub trait NetworkSim {
    /// Simulates the message DAG to completion.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] when a message references an out-of-range node,
    /// a missing or cyclic dependency, or a zero-byte payload.
    fn run(&mut self, mesh: &Mesh, messages: &[Message]) -> Result<SimOutcome, NocError>;
}
