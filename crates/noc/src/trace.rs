//! Structured event tracing for the network engines.
//!
//! Both engines can narrate a run as a stream of [`TraceEvent`]s — message
//! injections, per-packet and per-train link traversals (with the busy
//! interval each one holds on its directed link), deliveries, and the
//! schedule layer's reductions. Events flow through a [`TraceSink`] chosen
//! by the caller:
//!
//! * [`NullSink`] — the default. Its `record` is an inlined no-op and its
//!   [`TraceSink::ENABLED`] constant is `false`, so the engines' generic
//!   tracing code monomorphizes to nothing: the untraced hot path is
//!   bit-identical to an engine with no tracing compiled in at all.
//! * [`MemorySink`] — collects every event in a `Vec`, the input format of
//!   the [invariant auditor](crate::audit).
//! * [`RingSink`] — keeps only the last `capacity` events (a flight
//!   recorder for long runs, counting what it dropped).
//! * [`JsonlSink`] — serializes each event as one JSON object per line to
//!   any `io::Write`, for offline analysis.
//!
//! Times are in nanoseconds, matching the engines throughout.

use std::collections::VecDeque;
use std::io::{self, Write};

use meshcoll_topo::{LinkId, NodeId};

use crate::MsgId;

/// One structured simulation event. See the module docs for the stream's
/// overall shape; which variants appear depends on the engine (the
/// per-packet engine emits [`TraceEvent::PacketHop`], the coalescing fast
/// path [`TraceEvent::TrainHop`], the flit engine neither — it traces at
/// message granularity only).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A message became ready and its packets entered the network.
    Inject {
        /// The message.
        msg: MsgId,
        /// Sending chiplet.
        src: NodeId,
        /// Receiving chiplet.
        dst: NodeId,
        /// Payload bytes.
        bytes: u64,
        /// Packets the payload was split into.
        packets: u64,
        /// Injection time, ns.
        at_ns: f64,
    },
    /// One packet won one directed link (per-packet engine). The link is
    /// occupied for `[start_ns, busy_until_ns)`.
    PacketHop {
        /// The message the packet belongs to.
        msg: MsgId,
        /// Packet index within the message.
        packet: u64,
        /// Hop index along the route (0 = first link).
        hop: u32,
        /// The directed link traversed.
        link: LinkId,
        /// This packet's payload bytes.
        bytes: u64,
        /// When the packet arrived at this hop, ns.
        arrive_ns: f64,
        /// When it won the link, ns (`>= arrive_ns`).
        start_ns: f64,
        /// When the link frees again (serialization + per-packet overhead).
        busy_until_ns: f64,
    },
    /// One whole packet train traversed one directed link (coalescing fast
    /// path). Individual packet starts lie on the train's start curve
    /// between `first_start_ns` and `last_start_ns`.
    TrainHop {
        /// The message (train).
        msg: MsgId,
        /// Hop index along the route.
        hop: u32,
        /// The directed link traversed.
        link: LinkId,
        /// Packets in the train.
        packets: u64,
        /// Head-packet arrival at this hop, ns.
        arrive_ns: f64,
        /// Head-packet link-win time, ns.
        first_start_ns: f64,
        /// Tail-packet link-win time, ns.
        last_start_ns: f64,
    },
    /// A later train's head landed inside this train's committed arrival
    /// window on `link`; the fast path split the train at packet
    /// `split_index` and re-served the tail behind the interloper
    /// (coalescing fast path). Supersedes the `last_start_ns` of the
    /// matching earlier [`TraceEvent::TrainHop`]; packets and bytes are
    /// *not* re-counted.
    TrainSplit {
        /// The message (train) whose committed window was split.
        msg: MsgId,
        /// Hop index along the route.
        hop: u32,
        /// The directed link the split happened on.
        link: LinkId,
        /// First packet index served after the interloper.
        split_index: u64,
        /// Head-packet link-win time, ns (unchanged by the split).
        first_start_ns: f64,
        /// Tail-packet link-win time after the split, ns.
        last_start_ns: f64,
    },
    /// A message's last packet arrived at its destination.
    Deliver {
        /// The message.
        msg: MsgId,
        /// Payload bytes delivered.
        bytes: u64,
        /// Delivery time, ns.
        at_ns: f64,
    },
    /// A timed fault from the configured
    /// [`FaultTimeline`](meshcoll_topo::FaultTimeline) fired mid-run
    /// (online engine only). Exactly one of `link`/`node` is set.
    FaultArrival {
        /// The dying directed link, for a link-death event.
        link: Option<LinkId>,
        /// The dying chiplet, for a chiplet-death event.
        node: Option<NodeId>,
        /// Death timestamp, ns.
        at_ns: f64,
    },
    /// A packet was lost: the link at this hop died before the packet could
    /// start its transmission (online engine only). The packet's bytes
    /// leave the network here — the byte-conservation audit counts them
    /// against the injection.
    PacketDrop {
        /// The message the packet belongs to.
        msg: MsgId,
        /// Packet index within the message.
        packet: u64,
        /// Hop index along the route where the packet was lost.
        hop: u32,
        /// The dead directed link the packet needed.
        link: LinkId,
        /// This packet's payload bytes.
        bytes: u64,
        /// When the packet was lost, ns.
        at_ns: f64,
    },
    /// The online engine finished draining after a mid-run fault: every
    /// in-flight packet has either delivered or dropped, and the remaining
    /// messages form the un-executed suffix handed to repair.
    Drain {
        /// Drain completion time (last event processed), ns.
        at_ns: f64,
        /// Messages of the interrupted segment left undelivered.
        lost_msgs: u64,
        /// Payload bytes dropped in flight across the segment.
        lost_bytes: u64,
    },
    /// A repaired schedule suffix resumed execution after a drain (emitted
    /// by the orchestration layer). Every later event in the stream must
    /// occur at or after `at_ns`.
    Resume {
        /// Resume time (drain time plus charged repair latency), ns.
        at_ns: f64,
        /// Messages in the repaired suffix.
        suffix_msgs: u64,
    },
    /// A reduction was applied at a chiplet (emitted by the schedule layer,
    /// which models aggregation as free — the event's time is the delivery
    /// of the operands).
    Reduce {
        /// The schedule op performing the reduction.
        op: u32,
        /// The chiplet adding the received range into its partial sum.
        node: NodeId,
        /// Start of the reduced byte range.
        offset: u64,
        /// Length of the reduced byte range.
        bytes: u64,
        /// When the reduction's input was delivered, ns.
        at_ns: f64,
    },
}

/// Receives the event stream of a traced run.
///
/// Engines guard every emission with `if T::ENABLED`, so a sink whose
/// `ENABLED` is `false` (the [`NullSink`]) costs nothing — the event is
/// never even constructed.
pub trait TraceSink {
    /// Whether this sink wants events at all. Sinks that collect events
    /// keep the default `true`.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// The do-nothing sink used by the untraced default paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Collects every event in order; the auditor's input format.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A fixed-capacity flight recorder: keeps the most recent `capacity`
/// events and counts how many older ones it evicted.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring sink needs capacity > 0");
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events (`<= capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// Streams each event as one JSON object per line (JSONL). Field names
/// match the [`TraceEvent`] variants; ids are raw indices. Write errors are
/// sticky: the first one is retained and later events are discarded.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first write error.
    ///
    /// # Errors
    ///
    /// Returns the sticky error if any write failed.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        match *event {
            TraceEvent::Inject {
                msg,
                src,
                dst,
                bytes,
                packets,
                at_ns,
            } => writeln!(
                self.out,
                r#"{{"ev":"inject","msg":{},"src":{},"dst":{},"bytes":{bytes},"packets":{packets},"at_ns":{at_ns}}}"#,
                msg.index(),
                src.index(),
                dst.index(),
            ),
            TraceEvent::PacketHop {
                msg,
                packet,
                hop,
                link,
                bytes,
                arrive_ns,
                start_ns,
                busy_until_ns,
            } => writeln!(
                self.out,
                r#"{{"ev":"packet_hop","msg":{},"packet":{packet},"hop":{hop},"link":{},"bytes":{bytes},"arrive_ns":{arrive_ns},"start_ns":{start_ns},"busy_until_ns":{busy_until_ns}}}"#,
                msg.index(),
                link.index(),
            ),
            TraceEvent::TrainHop {
                msg,
                hop,
                link,
                packets,
                arrive_ns,
                first_start_ns,
                last_start_ns,
            } => writeln!(
                self.out,
                r#"{{"ev":"train_hop","msg":{},"hop":{hop},"link":{},"packets":{packets},"arrive_ns":{arrive_ns},"first_start_ns":{first_start_ns},"last_start_ns":{last_start_ns}}}"#,
                msg.index(),
                link.index(),
            ),
            TraceEvent::TrainSplit {
                msg,
                hop,
                link,
                split_index,
                first_start_ns,
                last_start_ns,
            } => writeln!(
                self.out,
                r#"{{"ev":"train_split","msg":{},"hop":{hop},"link":{},"split_index":{split_index},"first_start_ns":{first_start_ns},"last_start_ns":{last_start_ns}}}"#,
                msg.index(),
                link.index(),
            ),
            TraceEvent::Deliver { msg, bytes, at_ns } => writeln!(
                self.out,
                r#"{{"ev":"deliver","msg":{},"bytes":{bytes},"at_ns":{at_ns}}}"#,
                msg.index(),
            ),
            TraceEvent::Reduce {
                op,
                node,
                offset,
                bytes,
                at_ns,
            } => writeln!(
                self.out,
                r#"{{"ev":"reduce","op":{op},"node":{},"offset":{offset},"bytes":{bytes},"at_ns":{at_ns}}}"#,
                node.index(),
            ),
            TraceEvent::FaultArrival { link, node, at_ns } => writeln!(
                self.out,
                r#"{{"ev":"fault_arrival","link":{},"node":{},"at_ns":{at_ns}}}"#,
                link.map_or(-1i64, |l| l.index() as i64),
                node.map_or(-1i64, |n| n.index() as i64),
            ),
            TraceEvent::PacketDrop {
                msg,
                packet,
                hop,
                link,
                bytes,
                at_ns,
            } => writeln!(
                self.out,
                r#"{{"ev":"packet_drop","msg":{},"packet":{packet},"hop":{hop},"link":{},"bytes":{bytes},"at_ns":{at_ns}}}"#,
                msg.index(),
                link.index(),
            ),
            TraceEvent::Drain {
                at_ns,
                lost_msgs,
                lost_bytes,
            } => writeln!(
                self.out,
                r#"{{"ev":"drain","at_ns":{at_ns},"lost_msgs":{lost_msgs},"lost_bytes":{lost_bytes}}}"#,
            ),
            TraceEvent::Resume { at_ns, suffix_msgs } => writeln!(
                self.out,
                r#"{{"ev":"resume","at_ns":{at_ns},"suffix_msgs":{suffix_msgs}}}"#,
            ),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match self.write_event(&event) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(i: usize, at: f64) -> TraceEvent {
        TraceEvent::Deliver {
            msg: MsgId(i),
            bytes: 8,
            at_ns: at,
        }
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut s = MemorySink::new();
        s.record(deliver(0, 1.0));
        s.record(deliver(1, 2.0));
        assert_eq!(s.events().len(), 2);
        assert!(matches!(
            s.events()[0],
            TraceEvent::Deliver { msg: MsgId(0), .. }
        ));
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut s = RingSink::new(2);
        for i in 0..5 {
            s.record(deliver(i, i as f64));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let kept: Vec<usize> = s
            .events()
            .map(|e| match e {
                TraceEvent::Deliver { msg, .. } => msg.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_one_valid_object_per_line() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(TraceEvent::Inject {
            msg: MsgId(3),
            src: NodeId(0),
            dst: NodeId(5),
            bytes: 8192,
            packets: 1,
            at_ns: 0.0,
        });
        s.record(deliver(3, 348.68));
        assert_eq!(s.lines(), 2);
        let text = String::from_utf8(s.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""ev":"inject""#) && lines[0].contains(r#""msg":3"#));
        assert!(lines[1].contains(r#""ev":"deliver""#) && lines[1].contains("348.68"));
        // Each line must parse as a JSON object.
        for l in lines {
            assert!(meshcoll_util::json::parse(l).unwrap().is_object(), "{l}");
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the contract
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        assert!(MemorySink::ENABLED);
        NullSink.record(deliver(0, 0.0)); // must be callable and do nothing
    }
}
