//! Cycle-driven flit-level router model (validation engine).
//!
//! This engine models what BookSim models for the paper's configuration:
//! per-input-port virtual-channel buffers, credit-based flow control,
//! deterministic XY routing, and virtual cut-through switching (an output is
//! allocated to a packet only when a downstream VC has buffer space for the
//! *entire* packet, and is held until the tail flit passes).
//!
//! Time advances in flit slots (`flit_bytes / bandwidth` ns — 20.48 ns at the
//! Table II configuration): each directed link moves at most one flit per
//! slot, giving the same 25 GB/s peak bandwidth as [`PacketSim`]. It is
//! orders of magnitude slower than the packet engine and exists to validate
//! it; unit tests assert both engines agree on latency and bandwidth.
//!
//! [`PacketSim`]: crate::PacketSim

use std::collections::VecDeque;

use meshcoll_topo::{Direction, LinkId, Mesh, NodeId};

use crate::message::validate;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use crate::{LinkStats, Message, MsgId, NetworkSim, NocConfig, NocError, SimOutcome};

/// The cycle-driven flit-level simulator. See the module docs.
#[derive(Debug, Clone)]
pub struct FlitSim {
    cfg: NocConfig,
}

impl FlitSim {
    /// Creates a simulator with the given configuration.
    pub fn new(cfg: NocConfig) -> Self {
        FlitSim { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }
}

const INJ: usize = 4; // injection port index; 0..4 are E/W/N/S inputs

#[derive(Debug, Clone, Copy)]
struct Flit {
    msg: u32,
    /// Index into the message's route-node list of the router currently
    /// holding the flit.
    hop: u32,
    is_tail: bool,
    /// Flits in this packet (carried by every flit for simplicity; only the
    /// head's value is consulted at allocation).
    packet_flits: u32,
    is_head: bool,
}

#[derive(Debug, Clone, Copy)]
struct Alloc {
    in_port: usize,
    in_vc: usize,
    down_vc: usize,
}

#[derive(Debug)]
struct Ctx {
    /// buffers[node][port][vc]
    buffers: Vec<Vec<Vec<VecDeque<Flit>>>>,
    /// credits[link][vc] — space known free in the downstream input buffer.
    credits: Vec<Vec<usize>>,
    /// out_alloc[link]
    out_alloc: Vec<Option<Alloc>>,
    /// round-robin arbitration pointer per link
    rr: Vec<usize>,
    /// staged arrivals, applied at end of cycle: (node, port, vc, flit)
    staged: Vec<(usize, usize, usize, Flit)>,
}

impl NetworkSim for FlitSim {
    fn run(&mut self, mesh: &Mesh, messages: &[Message]) -> Result<SimOutcome, NocError> {
        self.run_traced(mesh, messages, &mut NullSink)
    }
}

impl FlitSim {
    /// Like [`NetworkSim::run`], but emits [`TraceEvent`]s into `sink`. The
    /// flit engine traces at message granularity only — injections and
    /// deliveries, no per-hop events (its flit-slot quantization makes hop
    /// times incomparable with the packet engines').
    ///
    /// # Errors
    ///
    /// Same as [`NetworkSim::run`].
    pub fn run_traced<T: TraceSink>(
        &self,
        mesh: &Mesh,
        messages: &[Message],
        sink: &mut T,
    ) -> Result<SimOutcome, NocError> {
        validate(messages)?;
        // The flit engine has no transient-fault machinery: a flapping link
        // or a timed mid-run fault would be silently ignored, producing a
        // confidently wrong timeline. Reject both as typed errors — callers
        // wanting those semantics must use the packet engine (whose
        // `SimMode::Auto` handles them natively).
        if !self.cfg.faults.flaps().is_empty() {
            return Err(NocError::Unsupported {
                reason: "transient link flaps are modeled only by the packet engine",
            });
        }
        if !self.cfg.timeline.is_empty() {
            return Err(NocError::Unsupported {
                reason: "timed fault arrivals are modeled only by the packet engine",
            });
        }
        let n = messages.len();
        let vcs = self.cfg.num_vcs;
        let depth = self.cfg.vc_buffer_depth;

        // Routes as node lists. Messages routed over a permanently dead link
        // (or dead chiplet) can never drain the flit pipeline; report them
        // up front as a stall rather than idling forever. (The flit engine
        // supports only this static fault check — degradation fractions and
        // transient flaps are modeled by the packet engine.)
        let mut route_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        let mut blocked = 0usize;
        let mut first_blocked: Option<(MsgId, LinkId)> = None;
        for m in messages {
            mesh.check_node(m.src)?;
            mesh.check_node(m.dst)?;
            let links = meshcoll_topo::routing::route(mesh, m.src, m.dst, self.cfg.routing)?;
            if let Some(&dead) = links
                .iter()
                .find(|&&l| !self.cfg.faults.link_usable(mesh, l))
            {
                blocked += 1;
                if first_blocked.is_none() {
                    first_blocked = Some((m.id, dead));
                }
            }
            let mut nodes = vec![m.src];
            nodes.extend(links.iter().map(|&l| mesh.link_endpoints(l).1));
            route_nodes.push(nodes);
        }
        if blocked > 0 {
            return Err(NocError::Stalled {
                pending_msgs: blocked,
                last_progress_ns: 0,
                first_blocked_msg: first_blocked.map(|(m, _)| m),
                first_blocked_link: first_blocked.map(|(_, l)| l),
                stalled_at_ns: 0,
            });
        }

        // Flits per message, grouped in packets.
        let flits_total: Vec<u64> = messages
            .iter()
            .map(|m| {
                let packets = self.cfg.packets_for(m.bytes);
                (0..packets)
                    .map(|p| {
                        let bytes = if p + 1 < packets {
                            self.cfg.packet_bytes
                        } else {
                            m.bytes - (packets - 1) * self.cfg.packet_bytes
                        };
                        self.cfg.flits_for(bytes)
                    })
                    .sum()
            })
            .collect();

        // Injection queues: flits awaiting admission, one lane per VC so a
        // chiplet can feed several outstanding packets concurrently (the
        // paper assumes endpoint memory bandwidth is not the bottleneck).
        let mut inj_queue: Vec<Vec<VecDeque<Flit>>> =
            vec![vec![VecDeque::new(); vcs]; mesh.nodes()];
        let mut pending_deps: Vec<usize> = messages.iter().map(|m| m.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for m in messages {
            for d in &m.deps {
                dependents[d.index()].push(m.id.index());
            }
        }

        let slot = self.cfg.flit_slot_ns();
        let mut ready_at_cycle: Vec<u64> = messages
            .iter()
            .map(|m| (m.ready_at_ns / slot).ceil() as u64)
            .collect();
        // Messages not yet enqueued for injection, ordered by readiness.
        let mut waiting: Vec<usize> = (0..n).filter(|&i| pending_deps[i] > 0).collect();
        let mut to_enqueue: Vec<usize> = (0..n).filter(|&i| pending_deps[i] == 0).collect();

        let enqueue_flits = |i: usize, inj_queue: &mut Vec<Vec<VecDeque<Flit>>>| {
            let m = &messages[i];
            let lane = i % vcs;
            let packets = self.cfg.packets_for(m.bytes);
            for p in 0..packets {
                let bytes = if p + 1 < packets {
                    self.cfg.packet_bytes
                } else {
                    m.bytes - (packets - 1) * self.cfg.packet_bytes
                };
                let pf = self.cfg.flits_for(bytes) as u32;
                for f in 0..pf {
                    inj_queue[m.src.index()][lane].push_back(Flit {
                        msg: i as u32,
                        hop: 0,
                        is_tail: f + 1 == pf,
                        packet_flits: pf,
                        is_head: f == 0,
                    });
                }
            }
        };

        let mut ctx = Ctx {
            buffers: vec![vec![vec![VecDeque::new(); vcs]; 5]; mesh.nodes()],
            credits: vec![vec![depth; vcs]; mesh.link_id_space()],
            out_alloc: vec![None; mesh.link_id_space()],
            rr: vec![0; mesh.link_id_space()],
            staged: Vec::new(),
        };
        // Injection-lane "reservation": which message's packet is currently
        // streaming into each injection VC.
        let mut inj_alloc: Vec<Vec<Option<usize>>> = vec![vec![None; vcs]; mesh.nodes()];

        let mut stats = LinkStats::new(mesh, &self.cfg.faults);
        let mut completion = vec![f64::NAN; n];
        let mut ejected: Vec<u64> = vec![0; n];
        let mut done = 0usize;
        let mut cycle: u64 = 0;
        let mut idle_cycles = 0u64;
        // Flits admitted to an injection queue and not yet ejected. While
        // this is zero the network state cannot change on its own, so the
        // clock can jump without scanning a single router.
        let mut in_flight: u64 = 0;

        // Output direction for a flit sitting at route hop h.
        let out_link = |mi: usize, hop: usize| -> Option<LinkId> {
            let rn = &route_nodes[mi];
            if hop + 1 < rn.len() {
                Some(
                    mesh.link_between(rn[hop], rn[hop + 1])
                        .expect("route adjacency"),
                )
            } else {
                None
            }
        };

        while done < n {
            // Idle-cycle skipping: with no flit anywhere in the network,
            // nothing moves until the next message becomes ready, so jump
            // the clock straight there. Credits return in the same cycle in
            // this model, so injections are the only future-time events —
            // there is no credit event to wait for while drained. (The
            // `activity` fallback below still covers the drained-but-waiting
            // shape for the deadlock detector.)
            if in_flight == 0 {
                if let Some(&next) = to_enqueue.iter().map(|&i| &ready_at_cycle[i]).min() {
                    if next > cycle {
                        cycle = next;
                    }
                }
            }
            let mut activity = false;

            // Enqueue freshly ready messages.
            let mut j = 0;
            while j < to_enqueue.len() {
                let i = to_enqueue[j];
                if ready_at_cycle[i] <= cycle {
                    enqueue_flits(i, &mut inj_queue);
                    in_flight += flits_total[i];
                    if T::ENABLED {
                        sink.record(TraceEvent::Inject {
                            msg: messages[i].id,
                            src: messages[i].src,
                            dst: messages[i].dst,
                            bytes: messages[i].bytes,
                            packets: self.cfg.packets_for(messages[i].bytes),
                            at_ns: cycle as f64 * slot,
                        });
                    }
                    to_enqueue.swap_remove(j);
                    activity = true;
                } else {
                    j += 1;
                }
            }

            // 1) Output allocation (VCT: need full-packet credit downstream).
            for (src, _dst, link) in mesh.links() {
                if ctx.out_alloc[link.index()].is_some() {
                    continue;
                }
                let li = link.index();
                let start = ctx.rr[li];
                let slots = 5 * vcs;
                for k in 0..slots {
                    let idx = (start + k) % slots;
                    let (port, vc) = (idx / vcs, idx % vcs);
                    let Some(f) = ctx.buffers[src.index()][port][vc].front() else {
                        continue;
                    };
                    if !f.is_head {
                        continue;
                    }
                    if out_link(f.msg as usize, f.hop as usize) != Some(link) {
                        continue;
                    }
                    let need = f.packet_flits as usize;
                    let Some(down_vc) = (0..vcs).find(|&v| ctx.credits[li][v] >= need) else {
                        continue;
                    };
                    ctx.out_alloc[li] = Some(Alloc {
                        in_port: port,
                        in_vc: vc,
                        down_vc,
                    });
                    // Reserve the downstream space for the whole packet.
                    ctx.credits[li][down_vc] -= need;
                    ctx.rr[li] = (idx + 1) % slots;
                    activity = true;
                    break;
                }
            }

            // 2) Switch traversal: each allocated output moves one flit.
            for (src, dst, link) in mesh.links() {
                let li = link.index();
                let Some(alloc) = ctx.out_alloc[li] else {
                    continue;
                };
                let buf = &mut ctx.buffers[src.index()][alloc.in_port][alloc.in_vc];
                let Some(&front) = buf.front() else { continue };
                // The allocated packet's flits are contiguous at the front of
                // the VC FIFO (VCT admits whole packets per VC).
                let mut f = front;
                buf.pop_front();
                // Return a credit to whoever feeds this input buffer.
                if alloc.in_port != INJ {
                    let from_dir = Direction::ALL[alloc.in_port];
                    let up = mesh
                        .neighbor(src, from_dir)
                        .expect("input port has neighbor");
                    let up_link = mesh.link_between(up, src).expect("upstream link");
                    ctx.credits[up_link.index()][alloc.in_vc] += 1;
                }
                if f.is_tail {
                    ctx.out_alloc[li] = None;
                } else if alloc.in_port == INJ {
                    // Keep streaming this packet from the injection queue.
                }
                f.hop += 1;
                let in_port_down = mesh
                    .direction_between(src, dst)
                    .expect("link endpoints adjacent")
                    .opposite()
                    .slot();
                ctx.staged
                    .push((dst.index(), in_port_down, alloc.down_vc, f));
                stats.add_busy(link, slot);
                activity = true;
            }

            // 3) Ejection: consume flits that have reached their destination.
            for node in mesh.node_ids() {
                for port in 0..5 {
                    for vc in 0..vcs {
                        let Some(&f) = ctx.buffers[node.index()][port][vc].front() else {
                            continue;
                        };
                        let rn = &route_nodes[f.msg as usize];
                        if (f.hop as usize) + 1 != rn.len() {
                            continue;
                        }
                        debug_assert_eq!(rn[f.hop as usize], node);
                        ctx.buffers[node.index()][port][vc].pop_front();
                        if port != INJ {
                            let from_dir = Direction::ALL[port];
                            let up = mesh.neighbor(node, from_dir).expect("neighbor");
                            let up_link = mesh.link_between(up, node).expect("link");
                            ctx.credits[up_link.index()][vc] += 1;
                        }
                        let mi = f.msg as usize;
                        ejected[mi] += 1;
                        in_flight -= 1;
                        activity = true;
                        if ejected[mi] == flits_total[mi] {
                            completion[mi] = (cycle + 1) as f64 * slot;
                            done += 1;
                            if T::ENABLED {
                                sink.record(TraceEvent::Deliver {
                                    msg: messages[mi].id,
                                    bytes: messages[mi].bytes,
                                    at_ns: completion[mi],
                                });
                            }
                            for &d in &dependents[mi] {
                                pending_deps[d] -= 1;
                                ready_at_cycle[d] = ready_at_cycle[d].max(cycle + 1);
                                if pending_deps[d] == 0 {
                                    waiting.retain(|&w| w != d);
                                    to_enqueue.push(d);
                                }
                            }
                        }
                    }
                }
            }

            // 4) Injection: each VC lane moves one flit per cycle into the
            //    injection input buffer (whole-packet admission per lane).
            for node in mesh.node_ids() {
                let ni = node.index();
                for vc in 0..vcs {
                    let Some(&front) = inj_queue[ni][vc].front() else {
                        continue;
                    };
                    match inj_alloc[ni][vc] {
                        None if front.is_head => {
                            let free = depth - ctx.buffers[ni][INJ][vc].len();
                            if free >= front.packet_flits as usize {
                                inj_alloc[ni][vc] = Some(front.msg as usize);
                            } else {
                                continue;
                            }
                        }
                        None => continue,
                        Some(_) => {}
                    }
                    if inj_alloc[ni][vc] == Some(front.msg as usize) {
                        let f = inj_queue[ni][vc].pop_front().expect("front exists");
                        if f.is_tail {
                            inj_alloc[ni][vc] = None;
                        }
                        ctx.buffers[ni][INJ][vc].push_back(f);
                        activity = true;
                    }
                }
            }

            // 5) Arrivals become visible next cycle.
            if !ctx.staged.is_empty() {
                for (node, port, vc, f) in ctx.staged.drain(..) {
                    ctx.buffers[node][port][vc].push_back(f);
                }
            }

            if activity {
                idle_cycles = 0;
            } else {
                // Skip ahead to the next readiness point if everything is idle.
                if let Some(&next) = to_enqueue
                    .iter()
                    .map(|&i| &ready_at_cycle[i])
                    .min_by(Ord::cmp)
                {
                    if next > cycle {
                        cycle = next;
                        continue;
                    }
                }
                idle_cycles += 1;
                if idle_cycles > 4 {
                    return Err(NocError::DependencyCycle { stuck: n - done });
                }
            }
            cycle += 1;
        }

        Ok(SimOutcome::new(completion, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgId, PacketSim};

    fn cfg() -> NocConfig {
        NocConfig::paper_default()
    }

    #[test]
    fn single_transfer_latency_close_to_packet_sim() {
        let mesh = Mesh::new(1, 4).unwrap();
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(3), 8192)];
        let flit = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let pkt = PacketSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let ratio = flit.makespan_ns() / pkt.makespan_ns();
        assert!(
            (0.7..1.5).contains(&ratio),
            "flit {} vs packet {} (ratio {ratio})",
            flit.makespan_ns(),
            pkt.makespan_ns()
        );
    }

    #[test]
    fn sustained_bandwidth_matches_packet_sim() {
        let mesh = Mesh::new(1, 2).unwrap();
        let bytes = 1 << 20;
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(1), bytes)];
        let flit = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let pkt = PacketSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let fb = flit.bandwidth_gbps(bytes);
        let pb = pkt.bandwidth_gbps(bytes);
        assert!(
            (fb - pb).abs() / pb < 0.1,
            "flit {fb} GB/s vs packet {pb} GB/s"
        );
    }

    #[test]
    fn contention_serializes_like_packet_sim() {
        let mesh = Mesh::new(1, 3).unwrap();
        let msgs = vec![
            Message::new(MsgId(0), NodeId(1), NodeId(2), 8192 * 8),
            Message::new(MsgId(1), NodeId(0), NodeId(2), 8192 * 8),
        ];
        let flit = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let pkt = PacketSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let ratio = flit.makespan_ns() / pkt.makespan_ns();
        assert!((0.7..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dead_link_reports_stalled_up_front() {
        let mesh = Mesh::new(1, 3).unwrap();
        let mut c = cfg();
        c.faults
            .fail_link_between(&mesh, NodeId(1), NodeId(2))
            .unwrap();
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(1), 8192),
            Message::new(MsgId(1), NodeId(0), NodeId(2), 8192),
        ];
        let err = FlitSim::new(c).run(&mesh, &msgs).unwrap_err();
        assert!(
            matches!(
                err,
                NocError::Stalled {
                    pending_msgs: 1,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn transient_faults_are_typed_unsupported_not_ignored() {
        // Regression: the flit engine has no flap or timeline machinery, so
        // silently accepting either would produce a confidently wrong
        // timeline. Both must come back as `NocError::Unsupported`.
        let mesh = Mesh::new(1, 2).unwrap();
        let link = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(1), 8192)];

        let mut flapping = cfg();
        flapping.faults.add_flap(meshcoll_topo::LinkFlap {
            link,
            down_ns: 100.0,
            up_ns: 200.0,
        });
        let err = FlitSim::new(flapping).run(&mesh, &msgs).unwrap_err();
        assert!(matches!(err, NocError::Unsupported { .. }), "got {err}");

        let mut timed = cfg();
        timed.timeline.link_dies_at(link, 100.0);
        let err = FlitSim::new(timed).run(&mesh, &msgs).unwrap_err();
        assert!(matches!(err, NocError::Unsupported { .. }), "got {err}");

        // The packet engine accepts the very same timeline.
        let mut timed = cfg();
        timed.timeline.link_dies_at(link, 100.0);
        PacketSim::new(timed)
            .simulate_online(&mesh, &msgs, &mut crate::NullSink)
            .unwrap();
    }

    #[test]
    fn dependencies_chain() {
        let mesh = Mesh::new(2, 2).unwrap();
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(1), 4096),
            Message::new(MsgId(1), NodeId(1), NodeId(3), 4096).with_deps([MsgId(0)]),
        ];
        let out = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        assert!(out.completion_ns(MsgId(1)).unwrap() > out.completion_ns(MsgId(0)).unwrap());
    }

    #[test]
    fn ready_at_is_respected() {
        let mesh = Mesh::new(1, 2).unwrap();
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(1), 512).with_ready_at(5000.0)];
        let out = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        assert!(out.makespan_ns() >= 5000.0);
    }

    #[test]
    fn cyclic_deps_detected() {
        let mesh = Mesh::new(1, 2).unwrap();
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(1), 8).with_deps([MsgId(1)]),
            Message::new(MsgId(1), NodeId(1), NodeId(0), 8).with_deps([MsgId(0)]),
        ];
        let err = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap_err();
        assert!(matches!(err, NocError::DependencyCycle { .. }));
    }

    #[test]
    fn wrap_links_work_in_the_flit_engine() {
        // A transfer across a torus wrap link takes one hop, not a full
        // row traversal — and both engines agree on it.
        let torus = Mesh::torus(3, 5).unwrap();
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(4), 8192)];
        let flit = FlitSim::new(cfg()).run(&torus, &msgs).unwrap();
        let pkt = PacketSim::new(cfg()).run(&torus, &msgs).unwrap();
        // Single-hop latency, nowhere near the 4-hop mesh route.
        let one_hop = cfg().serialization_ns(8192) + cfg().per_flit_latency_ns;
        assert!(pkt.makespan_ns() < one_hop * 1.5, "{}", pkt.makespan_ns());
        let ratio = flit.makespan_ns() / pkt.makespan_ns();
        assert!((0.7..1.5).contains(&ratio), "ratio {ratio}");
    }

    /// Whole cycles in a run's makespan (completions are exact multiples of
    /// the flit slot, so the division recovers the integer cycle count).
    fn cycles_of(makespan_ns: f64) -> u64 {
        let c = makespan_ns / cfg().flit_slot_ns();
        c.round() as u64
    }

    #[test]
    fn idle_skip_is_cycle_identical() {
        // A ~49-million-slot readiness gap must shift completion by exactly
        // the gap's cycle count: the jumped clock has to land on the same
        // cycle a cycle-by-cycle walk would have reached (and the walk
        // itself would take minutes, so this also guards the skip's
        // existence).
        let mesh = Mesh::new(1, 3).unwrap();
        let msg = |ready: f64| {
            vec![Message::new(MsgId(0), NodeId(0), NodeId(2), 8192 * 3).with_ready_at(ready)]
        };
        let base = FlitSim::new(cfg()).run(&mesh, &msg(0.0)).unwrap();
        let gap_ns = 1e9;
        let shifted = FlitSim::new(cfg()).run(&mesh, &msg(gap_ns)).unwrap();
        let gap_cycles = (gap_ns / cfg().flit_slot_ns()).ceil() as u64;
        assert_eq!(
            cycles_of(shifted.makespan_ns()),
            cycles_of(base.makespan_ns()) + gap_cycles,
        );
    }

    #[test]
    fn mid_run_drain_gap_is_skipped_cycle_identically() {
        // The network fully drains after msg 0, then msg 1 (dependent, with
        // a far-future ready time) wakes it again: the mid-run jump must
        // resume on exactly the cycle msg 1 becomes ready.
        let mesh = Mesh::new(1, 3).unwrap();
        let gap_ns = 2e8;
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(2), 8192),
            Message::new(MsgId(1), NodeId(0), NodeId(2), 8192 * 2)
                .with_deps([MsgId(0)])
                .with_ready_at(gap_ns),
        ];
        let out = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let solo = FlitSim::new(cfg())
            .run(
                &mesh,
                &[Message::new(MsgId(0), NodeId(0), NodeId(2), 8192 * 2)],
            )
            .unwrap();
        let gap_cycles = (gap_ns / cfg().flit_slot_ns()).ceil() as u64;
        assert_eq!(
            cycles_of(out.completion_ns(MsgId(1)).unwrap()),
            gap_cycles + cycles_of(solo.makespan_ns()),
        );
        // Msg 0's own timing is untouched by the later gap.
        assert_eq!(
            cycles_of(out.completion_ns(MsgId(0)).unwrap()),
            cycles_of(
                FlitSim::new(cfg())
                    .run(&mesh, &[Message::new(MsgId(0), NodeId(0), NodeId(2), 8192)])
                    .unwrap()
                    .makespan_ns()
            ),
        );
    }

    #[test]
    fn crossing_traffic_shares_fairly() {
        // Two long flows crossing at the center of a 3x3: both should finish,
        // and neither should starve (makespan < 3x solo).
        let mesh = Mesh::square(3).unwrap();
        let bytes = 8192 * 16;
        let msgs = vec![
            Message::new(MsgId(0), NodeId(3), NodeId(5), bytes),
            Message::new(MsgId(1), NodeId(1), NodeId(7), bytes),
        ];
        let out = FlitSim::new(cfg()).run(&mesh, &msgs).unwrap();
        let solo = FlitSim::new(cfg())
            .run(
                &mesh,
                &[Message::new(MsgId(0), NodeId(3), NodeId(5), bytes)],
            )
            .unwrap();
        assert!(out.makespan_ns() < 3.0 * solo.makespan_ns());
    }
}
