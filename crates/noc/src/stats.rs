use meshcoll_topo::{LinkId, Mesh};

use crate::MsgId;

/// Per-link occupancy accounting for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStats {
    busy_ns: Vec<f64>,
    physical_links: usize,
}

impl LinkStats {
    pub(crate) fn new(mesh: &Mesh) -> Self {
        LinkStats {
            busy_ns: vec![0.0; mesh.link_id_space()],
            physical_links: mesh.directed_links(),
        }
    }

    pub(crate) fn add_busy(&mut self, link: LinkId, ns: f64) {
        self.busy_ns[link.index()] += ns;
    }

    /// Total busy time accumulated on `link`, in ns.
    pub fn busy_ns(&self, link: LinkId) -> f64 {
        self.busy_ns.get(link.index()).copied().unwrap_or(0.0)
    }

    /// Number of directed links that carried at least one packet.
    pub fn used_links(&self) -> usize {
        self.busy_ns.iter().filter(|&&b| b > 0.0).count()
    }

    /// Fraction of the mesh's directed links that carried traffic, in
    /// percent (the Table I metric).
    pub fn used_link_percent(&self) -> f64 {
        100.0 * self.used_links() as f64 / self.physical_links as f64
    }

    /// Time-averaged network occupancy in percent over a window of
    /// `makespan_ns`: `sum(busy) / (links * makespan)`. This is the Fig 12
    /// link-utilization metric — an algorithm keeping 83 % of links busy for
    /// the whole AllReduce scores ~83 %.
    pub fn utilization_percent(&self, makespan_ns: f64) -> f64 {
        if makespan_ns <= 0.0 {
            return 0.0;
        }
        let total: f64 = self.busy_ns.iter().sum();
        100.0 * total / (self.physical_links as f64 * makespan_ns)
    }
}

/// The result of simulating a message DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    completion_ns: Vec<f64>,
    makespan_ns: f64,
    link_stats: LinkStats,
}

impl SimOutcome {
    pub(crate) fn new(completion_ns: Vec<f64>, link_stats: LinkStats) -> Self {
        let makespan_ns = completion_ns.iter().copied().fold(0.0, f64::max);
        SimOutcome {
            completion_ns,
            makespan_ns,
            link_stats,
        }
    }

    /// Completion time of a message (delivery of its last packet), in ns.
    ///
    /// # Panics
    ///
    /// Panics if the id was not part of the run.
    pub fn completion_ns(&self, id: MsgId) -> f64 {
        self.completion_ns[id.index()]
    }

    /// Completion times of all messages, indexed by message id.
    pub fn completions(&self) -> &[f64] {
        &self.completion_ns
    }

    /// Time at which the last message completed, in ns.
    pub fn makespan_ns(&self) -> f64 {
        self.makespan_ns
    }

    /// Per-link statistics.
    pub fn link_stats(&self) -> &LinkStats {
        &self.link_stats
    }

    /// Achieved bandwidth for `payload_bytes` of collective data:
    /// `bytes / makespan`, in bytes/ns (== GB/s).
    pub fn bandwidth_gbps(&self, payload_bytes: u64) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        payload_bytes as f64 / self.makespan_ns
    }

    /// Latency distribution of the given messages' completions relative to
    /// their `ready` times: `(mean, p50, p99, max)` in ns. `ready(i)` should
    /// return message `i`'s injection-eligible time (0.0 for unconstrained
    /// runs).
    pub fn latency_stats(&self, ready: impl Fn(usize) -> f64) -> LatencySummary {
        let mut lat: Vec<f64> = self
            .completion_ns
            .iter()
            .enumerate()
            .map(|(i, &c)| c - ready(i))
            .collect();
        lat.sort_by(f64::total_cmp);
        let n = lat.len();
        if n == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            mean_ns: lat.iter().sum::<f64>() / n as f64,
            p50_ns: lat[n / 2],
            p99_ns: lat[(n * 99 / 100).min(n - 1)],
            max_ns: lat[n - 1],
        }
    }
}

/// Message-latency distribution summary; see [`SimOutcome::latency_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean completion latency, ns.
    pub mean_ns: f64,
    /// Median completion latency, ns.
    pub p50_ns: f64,
    /// 99th-percentile completion latency, ns.
    pub p99_ns: f64,
    /// Worst-case completion latency, ns.
    pub max_ns: f64,
}
