use meshcoll_topo::{FaultModel, LinkId, Mesh};

use crate::MsgId;

/// Per-link occupancy accounting for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStats {
    busy_ns: Vec<f64>,
    physical_links: usize,
}

impl LinkStats {
    /// Counts only links the fault model leaves usable: a dead link cannot
    /// carry traffic, so including it in the denominator would under-report
    /// the utilization of degraded runs.
    pub(crate) fn new(mesh: &Mesh, faults: &FaultModel) -> Self {
        let usable = mesh
            .links()
            .filter(|&(_, _, link)| faults.link_usable(mesh, link))
            .count();
        LinkStats {
            busy_ns: vec![0.0; mesh.link_id_space()],
            physical_links: usable.max(1),
        }
    }

    /// Like [`LinkStats::new`], but reusing a recycled busy-time buffer so
    /// steady-state runs do not allocate (see `PacketSim::recycle`).
    pub(crate) fn recycled(mesh: &Mesh, faults: &FaultModel, mut busy_ns: Vec<f64>) -> Self {
        let usable = mesh
            .links()
            .filter(|&(_, _, link)| faults.link_usable(mesh, link))
            .count();
        busy_ns.clear();
        busy_ns.resize(mesh.link_id_space(), 0.0);
        LinkStats {
            busy_ns,
            physical_links: usable.max(1),
        }
    }

    /// Releases the busy-time buffer for pooling.
    pub(crate) fn into_busy(self) -> Vec<f64> {
        self.busy_ns
    }

    /// Mutable access to the raw per-link busy accumulator, so the coalesce
    /// engine can charge busy time without owning a `LinkStats`.
    pub(crate) fn busy_mut(&mut self) -> &mut [f64] {
        &mut self.busy_ns
    }

    /// Read access to the raw per-link busy accumulator; used when merging a
    /// component fallback outcome into a pooled global buffer.
    pub(crate) fn busy_slice(&self) -> &[f64] {
        &self.busy_ns
    }

    pub(crate) fn add_busy(&mut self, link: LinkId, ns: f64) {
        self.busy_ns[link.index()] += ns;
    }

    /// Folds another run's busy time in link-wise; used by the scoped
    /// fallback to merge per-component outcomes (components are
    /// link-disjoint, so each link's total comes from exactly one side).
    pub(crate) fn absorb(&mut self, other: &LinkStats) {
        debug_assert_eq!(self.busy_ns.len(), other.busy_ns.len());
        for (a, b) in self.busy_ns.iter_mut().zip(&other.busy_ns) {
            *a += b;
        }
    }

    /// Total busy time accumulated on `link`, in ns.
    pub fn busy_ns(&self, link: LinkId) -> f64 {
        self.busy_ns.get(link.index()).copied().unwrap_or(0.0)
    }

    /// Number of directed links that carried at least one packet.
    pub fn used_links(&self) -> usize {
        self.busy_ns.iter().filter(|&&b| b > 0.0).count()
    }

    /// Fraction of the mesh's *usable* directed links that carried traffic,
    /// in percent (the Table I metric). Links killed by the fault model are
    /// excluded from the denominator.
    pub fn used_link_percent(&self) -> f64 {
        100.0 * self.used_links() as f64 / self.physical_links as f64
    }

    /// Time-averaged network occupancy in percent over a window of
    /// `makespan_ns`: `sum(busy) / (usable_links * makespan)`. This is the
    /// Fig 12 link-utilization metric — an algorithm keeping 83 % of links
    /// busy for the whole AllReduce scores ~83 %. Dead links are excluded
    /// from the denominator.
    pub fn utilization_percent(&self, makespan_ns: f64) -> f64 {
        if makespan_ns <= 0.0 {
            return 0.0;
        }
        let total: f64 = self.busy_ns.iter().sum();
        100.0 * total / (self.physical_links as f64 * makespan_ns)
    }
}

/// The result of simulating a message DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    completion_ns: Vec<f64>,
    makespan_ns: f64,
    link_stats: LinkStats,
}

impl SimOutcome {
    pub(crate) fn new(completion_ns: Vec<f64>, link_stats: LinkStats) -> Self {
        let makespan_ns = completion_ns.iter().copied().fold(0.0, f64::max);
        SimOutcome {
            completion_ns,
            makespan_ns,
            link_stats,
        }
    }

    /// Decomposes the outcome into its owned buffers for pooling (see
    /// `PacketSim::recycle`).
    pub(crate) fn into_parts(self) -> (Vec<f64>, LinkStats) {
        (self.completion_ns, self.link_stats)
    }

    /// Completion time of a message (delivery of its last packet), in ns,
    /// or `None` when the id was not part of the run — consistent with the
    /// guarded [`LinkStats::busy_ns`] accessor.
    pub fn completion_ns(&self, id: MsgId) -> Option<f64> {
        self.completion_ns.get(id.index()).copied()
    }

    /// Completion times of all messages, indexed by message id.
    pub fn completions(&self) -> &[f64] {
        &self.completion_ns
    }

    /// Time at which the last message completed, in ns.
    pub fn makespan_ns(&self) -> f64 {
        self.makespan_ns
    }

    /// Per-link statistics.
    pub fn link_stats(&self) -> &LinkStats {
        &self.link_stats
    }

    /// Achieved bandwidth for `payload_bytes` of collective data:
    /// `bytes / makespan`, in bytes/ns (== GB/s).
    pub fn bandwidth_gbps(&self, payload_bytes: u64) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        payload_bytes as f64 / self.makespan_ns
    }

    /// Latency distribution of the given messages' completions relative to
    /// their `ready` times: `(mean, p50, p99, max)` in ns. `ready(i)` should
    /// return message `i`'s injection-eligible time (0.0 for unconstrained
    /// runs).
    pub fn latency_stats(&self, ready: impl Fn(usize) -> f64) -> LatencySummary {
        let mut lat: Vec<f64> = self
            .completion_ns
            .iter()
            .enumerate()
            .map(|(i, &c)| c - ready(i))
            .collect();
        lat.sort_by(f64::total_cmp);
        let n = lat.len();
        if n == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            mean_ns: lat.iter().sum::<f64>() / n as f64,
            p50_ns: lat[nearest_rank(n, 50)],
            p99_ns: lat[nearest_rank(n, 99)],
            max_ns: lat[n - 1],
        }
    }
}

/// Nearest-rank percentile index into a sorted sample of `n` elements:
/// `ceil(p/100 * n) - 1`. For even `n`, p50 lands on the lower-mid element
/// (rank n/2), and p99 never truncates down to p98 for small samples.
fn nearest_rank(n: usize, percentile: usize) -> usize {
    debug_assert!(n > 0 && (1..=100).contains(&percentile));
    (n * percentile).div_ceil(100).max(1) - 1
}

/// Message-latency distribution summary; see [`SimOutcome::latency_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean completion latency, ns.
    pub mean_ns: f64,
    /// Median completion latency, ns.
    pub p50_ns: f64,
    /// 99th-percentile completion latency, ns.
    pub p99_ns: f64,
    /// Worst-case completion latency, ns.
    pub max_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshcoll_topo::Mesh;

    #[test]
    fn nearest_rank_median_is_lower_mid_for_even_n() {
        // n = 4: ranks 1..=4, p50 -> rank 2 -> index 1 (not index 2).
        assert_eq!(nearest_rank(4, 50), 1);
        // n = 5: rank ceil(2.5) = 3 -> index 2, the true middle.
        assert_eq!(nearest_rank(5, 50), 2);
        assert_eq!(nearest_rank(1, 50), 0);
    }

    #[test]
    fn nearest_rank_p99_does_not_truncate_to_p98() {
        // n = 100: rank 99 -> index 98 (the 99th smallest).
        assert_eq!(nearest_rank(100, 99), 98);
        // Small n: p99 must land on the max, not one below it.
        assert_eq!(nearest_rank(10, 99), 9);
        assert_eq!(nearest_rank(3, 99), 2);
        assert_eq!(nearest_rank(100, 100), 99);
    }

    #[test]
    fn latency_stats_uses_nearest_rank() {
        let mesh = Mesh::square(3).unwrap();
        let faults = FaultModel::default();
        // Completions 10, 20, 30, 40 with ready = 0.
        let out = SimOutcome::new(vec![40.0, 10.0, 30.0, 20.0], LinkStats::new(&mesh, &faults));
        let s = out.latency_stats(|_| 0.0);
        assert_eq!(s.p50_ns, 20.0); // lower-mid of even sample
        assert_eq!(s.p99_ns, 40.0); // max for n = 4
        assert_eq!(s.max_ns, 40.0);
        assert_eq!(s.mean_ns, 25.0);
    }

    #[test]
    fn completion_ns_is_none_for_unknown_id() {
        let mesh = Mesh::square(3).unwrap();
        let faults = FaultModel::default();
        let out = SimOutcome::new(vec![5.0], LinkStats::new(&mesh, &faults));
        assert_eq!(out.completion_ns(MsgId(0)), Some(5.0));
        assert_eq!(out.completion_ns(MsgId(7)), None);
    }

    #[test]
    fn dead_links_shrink_the_utilization_denominator() {
        let mesh = Mesh::square(3).unwrap();
        let healthy = LinkStats::new(&mesh, &FaultModel::default());
        let mut faults = FaultModel::default();
        let a = mesh.node_ids().next().unwrap();
        let b = mesh
            .node_ids()
            .find(|&n| mesh.link_between(a, n).is_ok())
            .unwrap();
        faults.fail_link_between(&mesh, a, b).unwrap();
        let degraded = LinkStats::new(&mesh, &faults);
        assert!(degraded.physical_links < healthy.physical_links);
        assert_eq!(healthy.physical_links, mesh.directed_links());
    }
}
