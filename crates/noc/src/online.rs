//! Online fault injection for the per-packet engine.
//!
//! The static fault machinery ([`FaultModel`](meshcoll_topo::FaultModel))
//! describes a degraded-but-stable network: dead links are known before the
//! run starts, so the engines reject traffic routed over them up front. The
//! *online* engine in this module instead applies a
//! [`FaultTimeline`](meshcoll_topo::FaultTimeline) — links and chiplets that
//! die at simulation timestamps — while the run is in flight:
//!
//! * Transmissions already serialized onto a link when it dies complete;
//!   nothing new starts at or after the death time. A packet whose link-win
//!   time would fall at or past its link's death is **dropped** there (a
//!   [`TraceEvent::PacketDrop`]), and a message that becomes ready after a
//!   route link has died is withheld entirely (it belongs to the
//!   un-executed suffix).
//! * Instead of hanging into the stall watchdog, the run **drains**: every
//!   in-flight packet delivers or drops, and the engine returns a typed
//!   [`DrainSnapshot`] — which messages completed, the byte-level loss, and
//!   the fault overlay/remaining timeline a repair layer needs to regenerate
//!   the suffix on the surviving topology.
//! * Under [`SimMode::Auto`](crate::SimMode) the run is partitioned into
//!   link- and dependency-disjoint components; components whose links the
//!   timeline cannot touch keep the coalescing fast path, and an affected
//!   component keeps it too when the speculative fast-path attempt finishes
//!   strictly before the component's earliest death (every packet start
//!   precedes its own delivery, so `makespan <= earliest death` proves no
//!   start lands in the dead window). Only truly interrupted components pay
//!   the per-packet online loop.
//!
//! Schedule-level repair and resume orchestration live above the NoC (in
//! `meshcoll-collectives` and `meshcoll-sim`); this module's contract ends
//! at the drained snapshot plus [`splice_outcomes`] for merging the
//! per-segment results of a resumed run.

use meshcoll_topo::{FaultEvent, FaultModel, FaultTimeline, LinkId, Mesh};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::coalesce::{self, Coalesce};
use crate::packet_sim::{
    component_problem, packet_bytes, partition, remap_msg, Event, RunSetup, Time,
};
use crate::trace::{MemorySink, TraceEvent, TraceSink};
use crate::{LinkStats, Message, MsgId, NocConfig, NocError, PacketSim, SimMode, SimOutcome};

/// The drained state of a run interrupted by a timed fault arrival: what
/// completed, what was lost, and the world the repaired suffix must run in.
#[derive(Debug, Clone)]
pub struct DrainSnapshot {
    /// Timestamp of the earliest timeline event absorbed by this drain, ns.
    pub first_fault_ns: f64,
    /// Drain completion time, ns: no completed activity (delivery, drop, or
    /// link busy interval) extends past it, so a suffix resumed at or after
    /// this time cannot violate causality against the executed prefix.
    pub drain_ns: f64,
    /// Per message: did it deliver in full before the drain?
    pub delivered: Vec<bool>,
    /// Per message: payload bytes that physically reached the destination
    /// (partial for messages interrupted mid-flight).
    pub delivered_bytes: Vec<u64>,
    /// Payload bytes dropped in flight across the run.
    pub lost_bytes: u64,
    /// Messages left undelivered (dropped in flight or withheld).
    pub lost_msgs: usize,
    /// Timeline events folded into [`overlay`](Self::overlay) by this drain.
    pub faults_applied: usize,
    /// The static fault model *after* the drain: the configured faults plus
    /// every timeline event at or before [`drain_ns`](Self::drain_ns). The
    /// repaired suffix must be feasible on this overlay.
    pub overlay: FaultModel,
    /// Timeline events still in the future at the drain; the resumed run
    /// carries them so later faults keep firing.
    pub remaining: FaultTimeline,
    /// The first message lost (earliest drop, else the lowest-id
    /// undelivered message).
    pub first_lost_msg: Option<MsgId>,
    /// The dead link that claimed the first dropped packet, when a packet
    /// was dropped in flight (None when every loss was a withheld message).
    pub first_dead_link: Option<LinkId>,
}

impl DrainSnapshot {
    /// Collapses the snapshot into the stall error a completion-only caller
    /// (one that cannot repair) reports: the interruption's byte-level
    /// detail is folded into the enriched [`NocError::Stalled`] fields.
    pub fn into_stall_error(self) -> NocError {
        NocError::Stalled {
            pending_msgs: self.lost_msgs,
            last_progress_ns: self.drain_ns as u64,
            first_blocked_msg: self.first_lost_msg,
            first_blocked_link: self.first_dead_link,
            stalled_at_ns: self.first_fault_ns as u64,
        }
    }
}

/// Result of an online simulation: the (possibly partial) outcome, plus the
/// drained interruption state when a timed fault cut the run short.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Completion times and link stats of everything that executed.
    /// Undelivered messages keep `NaN` completions, which the makespan
    /// ignores.
    pub outcome: SimOutcome,
    /// `None` when the run completed despite the timeline (all activity
    /// finished before the deaths, or the deaths missed every route);
    /// otherwise the drained snapshot for the repair layer.
    pub interruption: Option<DrainSnapshot>,
}

/// Per-run (or per-component) accumulator of the online loop.
pub(crate) struct OnlinePart {
    completion: Vec<f64>,
    stats: LinkStats,
    delivered_bytes: Vec<u64>,
    lost_bytes: u64,
    /// Global max over completions, drop times, withhold decisions, and
    /// link busy-interval ends — the component's contribution to `drain_ns`.
    end_ns: f64,
    interrupted: bool,
    /// Earliest in-flight drop: (time, message, dead link).
    first_drop: Option<(f64, MsgId, LinkId)>,
}

/// Per-link death times implied by a timeline: the minimum over the link's
/// own `LinkDiesAt` events and the `ChipletDiesAt` of either endpoint
/// (a dead chiplet takes all its links down). `INFINITY` for links the
/// timeline never touches.
fn link_death_times(mesh: &Mesh, timeline: &FaultTimeline) -> Vec<f64> {
    let mut death = vec![f64::INFINITY; mesh.link_id_space()];
    for e in timeline.events() {
        match *e {
            FaultEvent::LinkDiesAt { link, t_ns } => {
                let d = &mut death[link.index()];
                *d = d.min(t_ns);
            }
            FaultEvent::ChipletDiesAt { node, t_ns } => {
                for (a, b, l) in mesh.links() {
                    if a == node || b == node {
                        let d = &mut death[l.index()];
                        *d = d.min(t_ns);
                    }
                }
            }
        }
    }
    death
}

/// Earliest death among the links a sub-problem's routes traverse.
fn min_route_death(setup: &RunSetup, death: &[f64]) -> f64 {
    setup
        .unique
        .iter()
        .flat_map(|r| r.iter())
        .map(|&l| death[l.index()])
        .fold(f64::INFINITY, f64::min)
}

/// Conservative bound on how far a busy interval can outlive the last
/// delivery: one full-packet serialization on the slowest route link plus
/// the per-packet overhead. Used to extend a fast-path component's `end_ns`
/// so `drain_ns` covers its busy tails exactly like the per-packet loop's
/// `link_free` tracking does.
fn busy_tail_slack(cfg: &NocConfig, setup: &RunSetup) -> f64 {
    let max_ser = setup
        .unique
        .iter()
        .flat_map(|r| r.iter())
        .map(|&l| cfg.serialization_on(l, cfg.packet_bytes))
        .fold(0.0, f64::max);
    max_ser + cfg.per_packet_overhead_ns
}

/// Wraps a clean (uninterrupted) static outcome as an [`OnlinePart`].
fn clean_part(
    cfg: &NocConfig,
    messages: &[Message],
    setup: &RunSetup,
    out: &SimOutcome,
) -> OnlinePart {
    OnlinePart {
        completion: out.completions().to_vec(),
        delivered_bytes: messages.iter().map(|m| m.bytes).collect(),
        end_ns: out.makespan_ns() + busy_tail_slack(cfg, setup),
        stats: out.link_stats().clone(),
        lost_bytes: 0,
        interrupted: false,
        first_drop: None,
    }
}

/// Splices the per-segment outcomes of a resumed online run (the
/// interrupted prefix plus each repaired suffix) into one whole-run
/// outcome: completion vectors concatenate in segment order, per-link busy
/// time sums, and the makespan is the global maximum (all segment times are
/// absolute, so no re-basing is needed). Undelivered prefix messages keep
/// their `NaN` completions, which the makespan fold ignores.
pub fn splice_outcomes(mesh: &Mesh, faults: &FaultModel, segments: &[SimOutcome]) -> SimOutcome {
    let mut completion = Vec::new();
    let mut stats = LinkStats::new(mesh, faults);
    for s in segments {
        completion.extend_from_slice(s.completions());
        stats.absorb(s.link_stats());
    }
    SimOutcome::new(completion, stats)
}

impl PacketSim {
    /// Simulates the message DAG under the configured
    /// [`FaultTimeline`](meshcoll_topo::FaultTimeline), draining instead of
    /// stalling when a timed fault interrupts the run. See the
    /// [module docs](crate::online) for the semantics.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`PacketSim::simulate`], plus
    /// [`NocError::Stalled`] when the *static* fault model already blocks a
    /// route (a mis-linted schedule, not an online fault) and
    /// [`NocError::Topology`] when the timeline names an out-of-range
    /// link or chiplet. A timed interruption is **not** an error — it is
    /// reported through [`OnlineReport::interruption`].
    pub fn simulate_online<T: TraceSink>(
        &self,
        mesh: &Mesh,
        messages: &[Message],
        sink: &mut T,
    ) -> Result<OnlineReport, NocError> {
        let setup = self.prepare(mesh, messages)?;
        self.online_with_setup(mesh, messages, &setup, sink)
    }

    /// The online simulation body, shared with
    /// [`PacketSim::simulate_traced`]'s completion-only wrapper.
    pub(crate) fn online_with_setup<T: TraceSink>(
        &self,
        mesh: &Mesh,
        messages: &[Message],
        setup: &RunSetup,
        sink: &mut T,
    ) -> Result<OnlineReport, NocError> {
        if self.cfg.timeline.is_empty() {
            let outcome = self.simulate_static(mesh, messages, setup, sink)?;
            return Ok(OnlineReport {
                outcome,
                interruption: None,
            });
        }
        self.cfg.timeline.validate(mesh)?;
        let death = link_death_times(mesh, &self.cfg.timeline);

        let part = if self.mode == SimMode::PerPacket || !self.cfg.faults.flaps().is_empty() {
            self.run_per_packet_online(mesh, messages, setup, &death, sink)?
        } else if let Some(p) = self.online_scoped(mesh, messages, setup, &death, sink) {
            p
        } else {
            // A component erred: re-run the whole DAG through the online
            // reference engine so typed errors, their bookkeeping, and the
            // emitted trace stay bit-identical to an unscoped run.
            self.run_per_packet_online(mesh, messages, setup, &death, sink)?
        };

        if !part.interrupted {
            return Ok(OnlineReport {
                outcome: SimOutcome::new(part.completion, part.stats),
                interruption: None,
            });
        }

        let drain_ns = part.end_ns;
        if T::ENABLED {
            for e in self.cfg.timeline.events() {
                if e.at_ns() <= drain_ns {
                    let (link, node) = match *e {
                        FaultEvent::LinkDiesAt { link, .. } => (Some(link), None),
                        FaultEvent::ChipletDiesAt { node, .. } => (None, Some(node)),
                    };
                    sink.record(TraceEvent::FaultArrival {
                        link,
                        node,
                        at_ns: e.at_ns(),
                    });
                }
            }
        }
        let mut overlay = self.cfg.faults.clone();
        let mut remaining = self.cfg.timeline.clone();
        let faults_applied = remaining.apply_through(drain_ns, &mut overlay);
        let delivered: Vec<bool> = part.completion.iter().map(|c| !c.is_nan()).collect();
        let lost_msgs = delivered.iter().filter(|&&d| !d).count();
        let first_fault_ns = self
            .cfg
            .timeline
            .first_at_ns()
            .unwrap_or(drain_ns)
            .min(drain_ns);
        if T::ENABLED {
            sink.record(TraceEvent::Drain {
                at_ns: drain_ns,
                lost_msgs: lost_msgs as u64,
                lost_bytes: part.lost_bytes,
            });
        }
        let first_lost_msg = part
            .first_drop
            .map(|(_, m, _)| m)
            .or_else(|| delivered.iter().position(|&d| !d).map(MsgId));
        let snapshot = DrainSnapshot {
            first_fault_ns,
            drain_ns,
            delivered,
            delivered_bytes: part.delivered_bytes,
            lost_bytes: part.lost_bytes,
            lost_msgs,
            faults_applied,
            overlay,
            remaining,
            first_lost_msg,
            first_dead_link: part.first_drop.map(|(_, _, l)| l),
        };
        Ok(OnlineReport {
            outcome: SimOutcome::new(part.completion, part.stats),
            interruption: Some(snapshot),
        })
    }

    /// The scoped `Auto` path: per component, unaffected runs keep full
    /// static semantics (fast path included), affected runs first try the
    /// fast path speculatively and accept it only when it provably finishes
    /// before the component's earliest death. Returns `None` when any
    /// component errors (the caller re-runs the whole DAG for bit-identical
    /// diagnostics); on `Some`, buffered traces have been flushed to `sink`
    /// grouped by component.
    fn online_scoped<T: TraceSink>(
        &self,
        mesh: &Mesh,
        messages: &[Message],
        setup: &RunSetup,
        death: &[f64],
        sink: &mut T,
    ) -> Option<OnlinePart> {
        let n = messages.len();
        let comps = partition(mesh, messages, setup);
        let mut whole = OnlinePart {
            completion: vec![f64::NAN; n],
            stats: LinkStats::new(mesh, &self.cfg.faults),
            delivered_bytes: vec![0; n],
            lost_bytes: 0,
            end_ns: 0.0,
            interrupted: false,
            first_drop: None,
        };
        let mut new_id: Vec<u32> = vec![0; n];
        let mut trace: Vec<TraceEvent> = Vec::new();
        for comp in &comps {
            let (msgs_c, setup_c) = component_problem(messages, setup, comp, &mut new_id);
            let min_death = min_route_death(&setup_c, death);
            let mut buf = MemorySink::new();
            let part = if min_death == f64::INFINITY {
                // The timeline cannot touch this component's links; static
                // semantics apply unchanged.
                let out = self
                    .simulate_static(mesh, &msgs_c, &setup_c, &mut buf)
                    .ok()?;
                clean_part(&self.cfg, &msgs_c, &setup_c, &out)
            } else {
                // Speculative fast path: every packet's link-win time
                // precedes its own delivery, so a fast-path makespan at or
                // before the earliest death proves no start lands in the
                // dead window and the static result is exact.
                let speculative = match coalesce::run(&self.cfg, mesh, &msgs_c, &setup_c, &mut buf)
                {
                    Ok(Coalesce::Done(out)) if out.makespan_ns() <= min_death => Some(out),
                    _ => None,
                };
                if let Some(out) = speculative {
                    clean_part(&self.cfg, &msgs_c, &setup_c, &out)
                } else {
                    buf = MemorySink::new();
                    self.run_per_packet_online(mesh, &msgs_c, &setup_c, death, &mut buf)
                        .ok()?
                }
            };
            for (j, &i) in comp.iter().enumerate() {
                whole.completion[i as usize] = part.completion[j];
                whole.delivered_bytes[i as usize] = part.delivered_bytes[j];
            }
            whole.stats.absorb(&part.stats);
            whole.lost_bytes += part.lost_bytes;
            whole.end_ns = whole.end_ns.max(part.end_ns);
            whole.interrupted |= part.interrupted;
            if let Some((t, m, l)) = part.first_drop {
                let global = (t, MsgId(comp[m.index()] as usize), l);
                if whole.first_drop.is_none_or(|(ft, _, _)| t < ft) {
                    whole.first_drop = Some(global);
                }
            }
            if T::ENABLED {
                trace.extend(buf.events().iter().map(|ev| remap_msg(*ev, comp)));
            }
        }
        for ev in trace {
            sink.record(ev);
        }
        Some(whole)
    }

    /// The per-packet event loop with online death handling: identical to
    /// the static reference engine except that a packet whose link-win time
    /// falls at or past its link's death is dropped there, and a message
    /// that becomes ready after a route link has died is withheld (never
    /// injected). Static-fault stalls and watchdog trips stay typed errors.
    pub(crate) fn run_per_packet_online<T: TraceSink>(
        &self,
        mesh: &Mesh,
        messages: &[Message],
        setup: &RunSetup,
        death: &[f64],
        sink: &mut T,
    ) -> Result<OnlinePart, NocError> {
        let n = messages.len();
        let blocked = &setup.blocked;
        let faults = &self.cfg.faults;

        let mut pending_deps: Vec<usize> = messages.iter().map(|m| m.deps.len()).collect();
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for m in messages {
            for d in &m.deps {
                dependents[d.index()].push(m.id.index() as u32);
            }
        }
        let mut earliest: Vec<f64> = messages.iter().map(|m| m.ready_at_ns).collect();

        let mut link_free: Vec<f64> = vec![0.0; mesh.link_id_space()];
        let mut stats = LinkStats::new(mesh, faults);
        let mut completion = vec![f64::NAN; n];
        let mut delivered_bytes: Vec<u64> = vec![0; n];
        let mut packets_left: Vec<u64> = messages
            .iter()
            .map(|m| self.cfg.packets_for(m.bytes))
            .collect();

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut injected = 0usize;
        let mut stalled = 0usize;
        let mut delivered = 0usize;
        let mut last_progress: f64 = 0.0;
        let mut interrupted = false;
        let mut lost_bytes: u64 = 0;
        let mut end_ns: f64 = 0.0;
        let mut first_drop: Option<(f64, MsgId, LinkId)> = None;

        let event_budget: u64 = messages
            .iter()
            .enumerate()
            .map(|(i, m)| self.cfg.packets_for(m.bytes) * (setup.route(i).len() as u64 + 1))
            .sum::<u64>()
            .saturating_add(self.cfg.stall_budget_slack);
        let mut events_popped: u64 = 0;

        let inject = |heap: &mut BinaryHeap<Reverse<Event>>,
                      seq: &mut u64,
                      sink: &mut T,
                      id: usize,
                      at: f64| {
            let count = self.cfg.packets_for(messages[id].bytes);
            if T::ENABLED {
                sink.record(TraceEvent::Inject {
                    msg: messages[id].id,
                    src: messages[id].src,
                    dst: messages[id].dst,
                    bytes: messages[id].bytes,
                    packets: count,
                    at_ns: at,
                });
            }
            for p in 0..count {
                *seq += 1;
                heap.push(Reverse(Event {
                    at: Time(at),
                    seq: *seq,
                    msg: id as u32,
                    packet: p as u32,
                    hop: 0,
                }));
            }
        };
        // A message becoming ready at `at` after a route link has already
        // died belongs to the un-executed suffix: it is withheld rather
        // than injected to die downstream. The withhold decision itself is
        // activity at `at`, so the drain clock must cover it (it is what
        // guarantees `apply_through(drain_ns)` folds the killing event).
        let dies = |i: usize, at: f64| setup.route(i).iter().any(|&l| death[l.index()] <= at);

        for (i, m) in messages.iter().enumerate() {
            if pending_deps[i] == 0 {
                injected += 1;
                if blocked[i] {
                    stalled += 1;
                } else if dies(i, m.ready_at_ns) {
                    interrupted = true;
                    end_ns = end_ns.max(m.ready_at_ns);
                } else {
                    inject(&mut heap, &mut seq, sink, i, m.ready_at_ns);
                }
            }
        }

        let hop_lat = self.cfg.per_flit_latency_ns;
        while let Some(Reverse(ev)) = heap.pop() {
            events_popped += 1;
            if events_popped > event_budget {
                return Err(NocError::Stalled {
                    pending_msgs: n - delivered,
                    last_progress_ns: last_progress as u64,
                    first_blocked_msg: None,
                    first_blocked_link: None,
                    stalled_at_ns: ev.at.0 as u64,
                });
            }
            let mi = ev.msg as usize;
            let route = setup.route(mi);
            if (ev.hop as usize) < route.len() {
                let link = route[ev.hop as usize];
                let bytes = packet_bytes(&self.cfg, messages[mi].bytes, ev.packet as u64);
                let start = faults.available_at(link, ev.at.0.max(link_free[link.index()]));
                if start >= death[link.index()] {
                    // The link died before this packet could win it; the
                    // packet is lost where it stands.
                    let at = ev.at.0.max(death[link.index()]);
                    interrupted = true;
                    lost_bytes += bytes;
                    end_ns = end_ns.max(at);
                    if first_drop.is_none_or(|(t, _, _)| at < t) {
                        first_drop = Some((at, messages[mi].id, link));
                    }
                    if T::ENABLED {
                        sink.record(TraceEvent::PacketDrop {
                            msg: messages[mi].id,
                            packet: ev.packet as u64,
                            hop: ev.hop,
                            link,
                            bytes,
                            at_ns: at,
                        });
                    }
                    continue;
                }
                let ser = self.cfg.serialization_on(link, bytes);
                link_free[link.index()] = start + ser + self.cfg.per_packet_overhead_ns;
                stats.add_busy(link, ser + self.cfg.per_packet_overhead_ns);
                end_ns = end_ns.max(link_free[link.index()]);
                if T::ENABLED {
                    sink.record(TraceEvent::PacketHop {
                        msg: messages[mi].id,
                        packet: ev.packet as u64,
                        hop: ev.hop,
                        link,
                        bytes,
                        arrive_ns: ev.at.0,
                        start_ns: start,
                        busy_until_ns: link_free[link.index()],
                    });
                }
                seq += 1;
                let next_at = if (ev.hop as usize) + 1 < route.len() {
                    start + hop_lat
                } else {
                    start + ser + hop_lat
                };
                heap.push(Reverse(Event {
                    at: Time(next_at),
                    seq,
                    msg: ev.msg,
                    packet: ev.packet,
                    hop: ev.hop + 1,
                }));
            } else {
                packets_left[mi] -= 1;
                delivered_bytes[mi] +=
                    packet_bytes(&self.cfg, messages[mi].bytes, ev.packet as u64);
                end_ns = end_ns.max(ev.at.0);
                if packets_left[mi] == 0 {
                    completion[mi] = ev.at.0;
                    delivered += 1;
                    last_progress = last_progress.max(ev.at.0);
                    if T::ENABLED {
                        sink.record(TraceEvent::Deliver {
                            msg: messages[mi].id,
                            bytes: messages[mi].bytes,
                            at_ns: ev.at.0,
                        });
                    }
                    for &d in &dependents[mi] {
                        let di = d as usize;
                        earliest[di] = earliest[di].max(ev.at.0);
                        pending_deps[di] -= 1;
                        if pending_deps[di] == 0 {
                            injected += 1;
                            if blocked[di] {
                                stalled += 1;
                            } else if dies(di, earliest[di]) {
                                interrupted = true;
                                end_ns = end_ns.max(earliest[di]);
                            } else {
                                inject(&mut heap, &mut seq, sink, di, earliest[di]);
                            }
                        }
                    }
                }
            }
        }

        if stalled > 0 {
            // Static dead routes are a schedule-lint failure, not an online
            // fault: keep the typed error bit-identical to the static
            // engine's.
            let culprit = (0..n).find(|&i| blocked[i] && completion[i].is_nan());
            let culprit_link = culprit.and_then(|i| {
                setup
                    .route(i)
                    .iter()
                    .copied()
                    .find(|&l| !faults.link_usable(mesh, l))
            });
            return Err(NocError::Stalled {
                pending_msgs: n - delivered,
                last_progress_ns: last_progress as u64,
                first_blocked_msg: culprit.map(MsgId),
                first_blocked_link: culprit_link,
                stalled_at_ns: last_progress as u64,
            });
        }
        if !interrupted && injected < n {
            return Err(NocError::DependencyCycle {
                stuck: n - injected,
            });
        }
        Ok(OnlinePart {
            completion,
            stats,
            delivered_bytes,
            lost_bytes,
            end_ns,
            interrupted,
            first_drop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullSink;
    use meshcoll_topo::NodeId;

    fn cfg() -> NocConfig {
        NocConfig::paper_default()
    }

    #[test]
    fn empty_timeline_matches_static_run() {
        let mesh = Mesh::new(1, 3).unwrap();
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(2), 1 << 16)];
        let sim = PacketSim::new(cfg());
        let report = sim.simulate_online(&mesh, &msgs, &mut NullSink).unwrap();
        assert!(report.interruption.is_none());
        let stat = sim.simulate(&mesh, &msgs).unwrap();
        assert_eq!(report.outcome.makespan_ns(), stat.makespan_ns());
    }

    #[test]
    fn late_death_does_not_interrupt() {
        let mesh = Mesh::new(1, 2).unwrap();
        let link = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let mut c = cfg();
        c.timeline.link_dies_at(link, 1e9); // far after completion
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(1), 8192)];
        let report = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        assert!(report.interruption.is_none());
        let expect = cfg().serialization_ns(8192) + cfg().per_flit_latency_ns;
        assert!((report.outcome.makespan_ns() - expect).abs() < 1e-6);
    }

    #[test]
    fn immediate_death_drains_with_full_loss() {
        let mesh = Mesh::new(1, 2).unwrap();
        let link = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let mut c = cfg();
        c.timeline.link_dies_at(link, 0.0);
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(1), 8192)];
        let report = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        let snap = report.interruption.expect("interrupted");
        assert_eq!(snap.lost_msgs, 1);
        assert!(!snap.delivered[0]);
        assert_eq!(snap.delivered_bytes[0], 0);
        assert!(snap.overlay.link_failed(link));
        assert!(snap.remaining.is_empty());
        assert_eq!(snap.first_dead_link, None); // withheld, not dropped
        assert_eq!(snap.first_lost_msg, Some(MsgId(0)));
    }

    #[test]
    fn mid_run_death_drops_in_flight_packets() {
        let mesh = Mesh::new(1, 2).unwrap();
        let link = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let mut c = cfg();
        // 4 packets x ~348.68 ns each; kill the link mid-stream.
        c.timeline.link_dies_at(link, 700.0);
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(1), 8192 * 4)];
        let mut sink = MemorySink::new();
        let report = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut sink)
            .unwrap();
        let snap = report.interruption.expect("interrupted");
        assert_eq!(snap.lost_msgs, 1);
        assert!(snap.lost_bytes > 0 && snap.lost_bytes < 8192 * 4);
        assert_eq!(snap.first_dead_link, Some(link));
        assert!(snap.drain_ns >= 700.0);
        // Partial bytes reached the destination before the death.
        assert!(snap.delivered_bytes[0] > 0);
        assert_eq!(snap.delivered_bytes[0] + snap.lost_bytes, 8192 * 4);
        let drops = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::PacketDrop { .. }))
            .count();
        assert!(drops >= 1);
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Drain { .. })));
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::FaultArrival { .. })));
    }

    #[test]
    fn unaffected_component_completes_alongside_interruption() {
        let mesh = Mesh::new(2, 2).unwrap();
        let dead = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let mut c = cfg();
        c.timeline.link_dies_at(dead, 0.0);
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(1), 1 << 16),
            Message::new(MsgId(1), NodeId(2), NodeId(3), 1 << 16),
        ];
        let report = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        let snap = report.interruption.expect("interrupted");
        assert_eq!(snap.delivered, vec![false, true]);
        assert!(report.outcome.completion_ns(MsgId(1)).unwrap().is_finite());
        assert_eq!(snap.lost_msgs, 1);
    }

    #[test]
    fn chiplet_death_kills_adjacent_links() {
        let mesh = Mesh::new(1, 3).unwrap();
        let mut c = cfg();
        c.timeline.chiplet_dies_at(NodeId(1), 0.0);
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(2), 8192)];
        let report = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        let snap = report.interruption.expect("interrupted");
        assert_eq!(snap.lost_msgs, 1);
        assert!(snap.overlay.node_failed(NodeId(1)));
    }

    #[test]
    fn withheld_dependent_joins_the_suffix() {
        let mesh = Mesh::new(1, 3).unwrap();
        let link = mesh.link_between(NodeId(1), NodeId(2)).unwrap();
        let mut c = cfg();
        // Dies before the dependent (which needs 1->2) becomes ready.
        c.timeline.link_dies_at(link, 10.0);
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(1), 1 << 16),
            Message::new(MsgId(1), NodeId(1), NodeId(2), 8192).with_deps([MsgId(0)]),
        ];
        let report = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        let snap = report.interruption.expect("interrupted");
        assert_eq!(snap.delivered, vec![true, false]);
        assert_eq!(snap.delivered_bytes[1], 0);
        assert_eq!(snap.lost_bytes, 0); // withheld, nothing dropped in flight
        assert!(snap.drain_ns >= report.outcome.completion_ns(MsgId(0)).unwrap());
    }

    #[test]
    fn per_packet_mode_agrees_with_auto_on_interruption() {
        let mesh = Mesh::new(2, 2).unwrap();
        let dead = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let mut c = cfg();
        c.timeline.link_dies_at(dead, 500.0);
        let msgs = vec![
            Message::new(MsgId(0), NodeId(0), NodeId(1), 8192 * 8),
            Message::new(MsgId(1), NodeId(2), NodeId(3), 8192 * 8),
        ];
        let auto = PacketSim::new(c.clone())
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        let per = PacketSim::new(c)
            .with_mode(SimMode::PerPacket)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap();
        let (sa, sp) = (
            auto.interruption.expect("auto interrupted"),
            per.interruption.expect("per-packet interrupted"),
        );
        assert_eq!(sa.delivered, sp.delivered);
        assert_eq!(sa.lost_bytes, sp.lost_bytes);
        let (a, p) = (
            auto.outcome.completion_ns(MsgId(1)).unwrap(),
            per.outcome.completion_ns(MsgId(1)).unwrap(),
        );
        assert!((a - p).abs() < 1e-6, "auto {a} vs per-packet {p}");
    }

    #[test]
    fn static_dead_route_is_still_a_typed_stall() {
        let mesh = Mesh::new(1, 3).unwrap();
        let mut c = cfg();
        c.faults
            .fail_link_between(&mesh, NodeId(1), NodeId(2))
            .unwrap();
        let far = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        c.timeline.link_dies_at(far, 1e9);
        let msgs = vec![Message::new(MsgId(0), NodeId(0), NodeId(2), 8192)];
        let err = PacketSim::new(c)
            .simulate_online(&mesh, &msgs, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, NocError::Stalled { .. }), "got {err}");
    }

    #[test]
    fn splice_outcomes_merges_segments() {
        let mesh = Mesh::new(1, 3).unwrap();
        let sim = PacketSim::new(cfg());
        let a = sim
            .simulate(&mesh, &[Message::new(MsgId(0), NodeId(0), NodeId(1), 8192)])
            .unwrap();
        let b = sim
            .simulate(
                &mesh,
                &[Message::new(MsgId(0), NodeId(1), NodeId(2), 8192).with_ready_at(5000.0)],
            )
            .unwrap();
        let whole = splice_outcomes(&mesh, &FaultModel::default(), &[a.clone(), b.clone()]);
        assert_eq!(whole.completions().len(), 2);
        assert_eq!(whole.makespan_ns(), b.makespan_ns());
        let l0 = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        assert!((whole.link_stats().busy_ns(l0) - a.link_stats().busy_ns(l0)).abs() < 1e-9);
    }
}
