use std::error::Error;
use std::fmt;

use meshcoll_topo::{LinkId, TopologyError};

use crate::message::MsgId;

/// Errors produced by the network simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A message's source or destination node is not in the mesh.
    Topology(TopologyError),
    /// A message depends on a message id that is not part of the run.
    UnknownDependency {
        /// The message with the bad dependency.
        msg: usize,
        /// The missing dependency id.
        dep: usize,
    },
    /// Message ids are not dense `0..n` (required so ids index arrays).
    NonDenseIds {
        /// The offending id.
        msg: usize,
        /// Expected id at this position.
        expected: usize,
    },
    /// The dependency graph contains a cycle; simulation cannot make progress.
    DependencyCycle {
        /// Number of messages left unscheduled when progress stopped.
        stuck: usize,
    },
    /// A message had zero payload bytes.
    EmptyMessage {
        /// The offending message id.
        msg: usize,
    },
    /// A message sends to itself, which occupies no link.
    SelfMessage {
        /// The offending message id.
        msg: usize,
    },
    /// The simulation stopped making progress: some messages can never be
    /// delivered (their route crosses a failed link or dead chiplet in the
    /// configured fault model, or a watchdog budget tripped). Replaces what
    /// would otherwise be an infinite wait with a structured diagnostic.
    Stalled {
        /// Messages not yet delivered when progress stopped.
        pending_msgs: usize,
        /// Simulation time (ns, rounded down) of the last delivery before
        /// the stall — 0 when nothing was ever delivered.
        last_progress_ns: u64,
        /// The first message (in id order) found blocked, when known —
        /// distinguishes a dead-route stall (one culprit message) from a
        /// watchdog trip (budget exhausted with no single culprit).
        first_blocked_msg: Option<MsgId>,
        /// The first unusable link on that message's route, when the stall
        /// is caused by a dead route (None for budget trips).
        first_blocked_link: Option<LinkId>,
        /// Simulation time (ns, rounded down) at which the stall was
        /// detected — for a dead route this is detection at injection
        /// analysis; for a watchdog trip, the clock when the budget ran out.
        stalled_at_ns: u64,
    },
    /// The run carries more messages than the engines' dense `u32` index
    /// spaces can address; a larger run would silently alias message ids.
    TooManyMessages {
        /// Number of messages submitted.
        count: usize,
        /// Maximum supported per run ([`crate::MAX_MESSAGES`]).
        max: usize,
    },
    /// The requested feature combination is not modeled by this engine —
    /// e.g. transient link flaps or a non-empty fault timeline reaching the
    /// cycle-accurate flit engine, which has no mid-run fault machinery.
    /// Callers should route such runs to the per-packet engine instead.
    Unsupported {
        /// What the engine cannot model.
        reason: &'static str,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::Topology(e) => write!(f, "topology error: {e}"),
            NocError::UnknownDependency { msg, dep } => {
                write!(f, "message {msg} depends on unknown message {dep}")
            }
            NocError::NonDenseIds { msg, expected } => {
                write!(f, "message id {msg} at position expecting id {expected}")
            }
            NocError::DependencyCycle { stuck } => {
                write!(f, "dependency cycle: {stuck} messages never became ready")
            }
            NocError::EmptyMessage { msg } => write!(f, "message {msg} has zero bytes"),
            NocError::SelfMessage { msg } => {
                write!(f, "message {msg} has identical source and destination")
            }
            NocError::Stalled {
                pending_msgs,
                last_progress_ns,
                first_blocked_msg,
                first_blocked_link,
                stalled_at_ns,
            } => {
                write!(
                    f,
                    "simulation stalled: {pending_msgs} messages undeliverable \
                     (last progress at {last_progress_ns} ns, detected at {stalled_at_ns} ns"
                )?;
                if let Some(m) = first_blocked_msg {
                    write!(f, ", first blocked message {}", m.0)?;
                }
                if let Some(l) = first_blocked_link {
                    write!(f, " at link {}", l.0)?;
                }
                write!(f, ")")
            }
            NocError::TooManyMessages { count, max } => {
                write!(f, "{count} messages exceed the supported {max} per run")
            }
            NocError::Unsupported { reason } => {
                write!(f, "unsupported by this engine: {reason}")
            }
        }
    }
}

impl Error for NocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NocError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for NocError {
    fn from(e: TopologyError) -> Self {
        NocError::Topology(e)
    }
}
