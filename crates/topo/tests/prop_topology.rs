//! Property tests on the topology substrate: Hamiltonian constructions and
//! XY routing must hold their invariants for arbitrary mesh shapes.

use meshcoll_topo::{hamiltonian, routing, Mesh, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serpentine_path_is_always_hamiltonian(rows in 1usize..16, cols in 1usize..16) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let path = hamiltonian::serpentine_path(&mesh);
        prop_assert_eq!(path.len(), mesh.nodes());
        let mut seen = vec![false; mesh.nodes()];
        for n in &path {
            prop_assert!(!seen[n.index()]);
            seen[n.index()] = true;
        }
        for w in path.windows(2) {
            prop_assert!(mesh.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn even_meshes_have_valid_cycles(rows in 2usize..16, cols in 2usize..16) {
        let mesh = Mesh::new(rows, cols).unwrap();
        match hamiltonian::hamiltonian_cycle(&mesh) {
            Ok(cycle) => {
                prop_assert!(!mesh.is_odd_sized());
                prop_assert!(hamiltonian::is_hamiltonian_cycle(&mesh, &cycle, &[]));
            }
            Err(_) => prop_assert!(mesh.is_odd_sized()),
        }
    }

    #[test]
    fn odd_meshes_have_valid_corner_excluded_cycles(
        ri in 0usize..7,
        ci in 0usize..7,
    ) {
        let (rows, cols) = (2 * ri + 3, 2 * ci + 3);
        let mesh = Mesh::new(rows, cols).unwrap();
        let (cycle, excluded) = hamiltonian::corner_excluded_cycle(&mesh).unwrap();
        prop_assert_eq!(excluded, *mesh.corners().last().unwrap());
        prop_assert!(hamiltonian::is_hamiltonian_cycle(&mesh, &cycle, &[excluded]));
    }

    #[test]
    fn xy_routes_are_shortest_and_contiguous(
        rows in 1usize..10,
        cols in 1usize..10,
        a in 0usize..100,
        b in 0usize..100,
    ) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let a = NodeId(a % mesh.nodes());
        let b = NodeId(b % mesh.nodes());
        let route = routing::xy_route(&mesh, a, b).unwrap();
        prop_assert_eq!(route.len(), mesh.distance(a, b));
        let mut at = a;
        for l in route {
            let (s, d) = mesh.link_endpoints(l);
            prop_assert_eq!(s, at);
            prop_assert!(mesh.are_adjacent(s, d));
            at = d;
        }
        prop_assert_eq!(at, b);
    }

    #[test]
    fn link_ids_are_stable_bijections(rows in 1usize..10, cols in 1usize..10) {
        let mesh = Mesh::new(rows, cols).unwrap();
        for (s, d, l) in mesh.links() {
            prop_assert_eq!(mesh.link_between(s, d).unwrap(), l);
            prop_assert_eq!(mesh.link_endpoints(l), (s, d));
            // The reverse direction is a different physical link.
            let rev = mesh.link_between(d, s).unwrap();
            prop_assert_ne!(rev, l);
        }
    }
}
