//! Torus-topology tests: wrap links, wrap-aware distance/routing, and
//! Hamiltonian cycles of any parity (the property meshes lack).

use meshcoll_topo::{hamiltonian, routing, Coord, Direction, Mesh, NodeId};

#[test]
fn torus_rejects_degenerate_dims() {
    assert!(Mesh::torus(2, 5).is_err());
    assert!(Mesh::torus(5, 2).is_err());
    assert!(Mesh::torus(3, 3).is_ok());
}

#[test]
fn every_torus_node_has_four_neighbors() {
    let t = Mesh::torus(3, 5).unwrap();
    for n in t.node_ids() {
        assert_eq!(t.neighbors(n).len(), 4);
    }
    assert_eq!(t.directed_links(), 4 * 15);
    assert_eq!(t.links().count(), t.directed_links());
}

#[test]
fn wrap_links_connect_opposite_edges() {
    let t = Mesh::torus(4, 4).unwrap();
    let left = t.node_at(Coord::new(1, 0));
    let right = t.node_at(Coord::new(1, 3));
    assert!(t.are_adjacent(left, right));
    assert_eq!(t.neighbor(left, Direction::West), Some(right));
    assert_eq!(t.neighbor(right, Direction::East), Some(left));
    let top = t.node_at(Coord::new(0, 2));
    let bottom = t.node_at(Coord::new(3, 2));
    assert_eq!(t.neighbor(top, Direction::North), Some(bottom));
    assert_eq!(t.neighbor(bottom, Direction::South), Some(top));
}

#[test]
fn torus_distance_takes_the_short_way_round() {
    let t = Mesh::torus(5, 5).unwrap();
    // Mesh distance (0,0)->(0,4) would be 4; the wrap makes it 1.
    assert_eq!(t.distance(NodeId(0), NodeId(4)), 1);
    assert_eq!(t.distance(NodeId(0), NodeId(24)), 2); // wrap both dims
    let m = Mesh::square(5).unwrap();
    assert_eq!(m.distance(NodeId(0), NodeId(24)), 8);
}

#[test]
fn torus_routes_are_shortest_and_contiguous() {
    let t = Mesh::torus(5, 7).unwrap();
    for a in t.node_ids() {
        for b in t.node_ids() {
            let r = routing::xy_route(&t, a, b).unwrap();
            assert_eq!(r.len(), t.distance(a, b), "{a}->{b}");
            let mut at = a;
            for l in r {
                let (s, d) = t.link_endpoints(l);
                assert_eq!(s, at);
                at = d;
            }
            assert_eq!(at, b);
        }
    }
}

#[test]
fn odd_torus_has_a_hamiltonian_cycle() {
    // The paper's whole motivation: odd meshes lack this, tori don't.
    for (r, c) in [(3, 3), (3, 5), (5, 5), (4, 4), (4, 5), (7, 9), (6, 6)] {
        let t = Mesh::torus(r, c).unwrap();
        let cycle =
            hamiltonian::hamiltonian_cycle(&t).unwrap_or_else(|e| panic!("{r}x{c} torus: {e}"));
        assert!(
            hamiltonian::is_hamiltonian_cycle(&t, &cycle, &[]),
            "{r}x{c} torus cycle invalid"
        );
    }
}

#[test]
fn mesh_behavior_is_unchanged() {
    let m = Mesh::new(5, 5).unwrap();
    assert!(!m.is_torus());
    assert!(hamiltonian::hamiltonian_cycle(&m).is_err());
    assert_eq!(m.neighbors(NodeId(0)).len(), 2);
}
