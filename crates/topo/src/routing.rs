//! XY dimension-order routing.
//!
//! The paper's network (BookSim-configured mesh) uses deterministic
//! dimension-order routing; messages first travel along the X dimension
//! (columns), then along Y (rows). Multi-hop traffic produced by the
//! topology-oblivious algorithms (DBTree, the ring "wrap-around" emulation)
//! contends on these routes, which is a large part of why those algorithms
//! underperform on a mesh.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::{LinkId, Mesh, NodeId, TopologyError};

/// Deterministic dimension-order routing variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingAlgorithm {
    /// Columns first, then rows (the paper's configuration).
    #[default]
    Xy,
    /// Rows first, then columns — used by the routing-sensitivity ablation.
    Yx,
}

/// Returns the route from `src` to `dst` under the chosen dimension order.
///
/// # Errors
///
/// Returns [`TopologyError::NodeOutOfRange`] if either node is out of range.
pub fn route(
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    algorithm: RoutingAlgorithm,
) -> Result<Vec<LinkId>, TopologyError> {
    match algorithm {
        RoutingAlgorithm::Xy => xy_route(mesh, src, dst),
        RoutingAlgorithm::Yx => yx_route(mesh, src, dst),
    }
}

/// Returns the YX route (rows first) from `src` to `dst` as directed links.
///
/// # Errors
///
/// Returns [`TopologyError::NodeOutOfRange`] if either node is out of range.
pub fn yx_route(mesh: &Mesh, src: NodeId, dst: NodeId) -> Result<Vec<LinkId>, TopologyError> {
    mesh.check_node(src)?;
    mesh.check_node(dst)?;
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    let mut links = Vec::with_capacity(mesh.distance(src, dst));
    let mut at = src;
    for row in dim_steps(s.row, d.row, mesh.rows(), mesh.is_torus()) {
        let next = mesh.node_at(crate::Coord::new(row, s.col));
        links.push(mesh.link_between(at, next)?);
        at = next;
    }
    for col in dim_steps(s.col, d.col, mesh.cols(), mesh.is_torus()) {
        let next = mesh.node_at(crate::Coord::new(d.row, col));
        links.push(mesh.link_between(at, next)?);
        at = next;
    }
    Ok(links)
}

/// Returns the XY route from `src` to `dst` as the ordered list of directed
/// links traversed. An empty route means `src == dst`.
///
/// # Errors
///
/// Returns [`TopologyError::NodeOutOfRange`] if either node is out of range.
///
/// # Example
///
/// ```
/// use meshcoll_topo::{routing, Mesh, NodeId};
/// let mesh = Mesh::square(3)?;
/// // 0 -> 8 goes east twice (x first), then south twice.
/// let route = routing::xy_route(&mesh, NodeId(0), NodeId(8))?;
/// assert_eq!(route.len(), 4);
/// # Ok::<(), meshcoll_topo::TopologyError>(())
/// ```
pub fn xy_route(mesh: &Mesh, src: NodeId, dst: NodeId) -> Result<Vec<LinkId>, TopologyError> {
    mesh.check_node(src)?;
    mesh.check_node(dst)?;
    let hops = xy_route_nodes(mesh, src, dst)?;
    let mut links = Vec::with_capacity(hops.len().saturating_sub(1));
    for w in hops.windows(2) {
        links.push(mesh.link_between(w[0], w[1])?);
    }
    Ok(links)
}

/// Returns the XY route as the ordered node sequence `src ..= dst`
/// (inclusive on both ends; a single-element route means `src == dst`).
///
/// # Errors
///
/// Returns [`TopologyError::NodeOutOfRange`] if either node is out of range.
pub fn xy_route_nodes(mesh: &Mesh, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, TopologyError> {
    mesh.check_node(src)?;
    mesh.check_node(dst)?;
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    let mut nodes = Vec::with_capacity(mesh.distance(src, dst) + 1);
    nodes.push(src);
    for col in dim_steps(s.col, d.col, mesh.cols(), mesh.is_torus()) {
        nodes.push(mesh.node_at(crate::Coord::new(s.row, col)));
    }
    for row in dim_steps(s.row, d.row, mesh.rows(), mesh.is_torus()) {
        nodes.push(mesh.node_at(crate::Coord::new(row, d.col)));
    }
    Ok(nodes)
}

/// Visits the route from `src` to `dst` link by link without allocating —
/// the same links, in the same order, that [`route`] would return. The
/// static analyzer walks every op's route this way so a single `analyze`
/// call stays allocation-free on its hot path.
///
/// # Errors
///
/// Returns [`TopologyError::NodeOutOfRange`] if either node is out of range.
pub fn for_each_route_link<F: FnMut(LinkId)>(
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    algorithm: RoutingAlgorithm,
    mut f: F,
) -> Result<(), TopologyError> {
    mesh.check_node(src)?;
    mesh.check_node(dst)?;
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    let mut at = src;
    match algorithm {
        RoutingAlgorithm::Xy => {
            walk_dim(
                mesh,
                &mut at,
                s.col,
                d.col,
                mesh.cols(),
                |c| crate::Coord::new(s.row, c),
                &mut f,
            )?;
            walk_dim(
                mesh,
                &mut at,
                s.row,
                d.row,
                mesh.rows(),
                |r| crate::Coord::new(r, d.col),
                &mut f,
            )?;
        }
        RoutingAlgorithm::Yx => {
            walk_dim(
                mesh,
                &mut at,
                s.row,
                d.row,
                mesh.rows(),
                |r| crate::Coord::new(r, s.col),
                &mut f,
            )?;
            walk_dim(
                mesh,
                &mut at,
                s.col,
                d.col,
                mesh.cols(),
                |c| crate::Coord::new(d.row, c),
                &mut f,
            )?;
        }
    }
    Ok(())
}

/// Steps `at` along one dimension from `from` to `to` (shorter way around
/// on a torus, ties forward — the same choice as [`dim_steps`]), feeding
/// each traversed link to `f`.
fn walk_dim(
    mesh: &Mesh,
    at: &mut NodeId,
    from: usize,
    to: usize,
    n: usize,
    mut coord_of: impl FnMut(usize) -> crate::Coord,
    f: &mut impl FnMut(LinkId),
) -> Result<(), TopologyError> {
    if from == to {
        return Ok(());
    }
    let wrap = mesh.is_torus();
    let forward = (to + n - from) % n;
    let go_forward = if !wrap {
        to > from
    } else {
        forward <= n - forward
    };
    let hops = if !wrap {
        to.abs_diff(from)
    } else if go_forward {
        forward
    } else {
        n - forward
    };
    let mut c = from;
    for _ in 0..hops {
        c = if go_forward {
            (c + 1) % n
        } else {
            (c + n - 1) % n
        };
        let next = mesh.node_at(coord_of(c));
        f(mesh.link_between(*at, next)?);
        *at = next;
    }
    Ok(())
}

/// Cache key: routes are a pure function of the mesh shape, the routing
/// variant, and the endpoints — not of any particular [`Mesh`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RouteKey {
    rows: usize,
    cols: usize,
    torus: bool,
    algorithm: RoutingAlgorithm,
    src: usize,
    dst: usize,
}

/// One cached route plus its last-use stamp. The stamp is atomic so the
/// read path (a cache hit) can refresh it under the shard's *read* lock.
#[derive(Debug)]
struct CacheEntry {
    route: Arc<[LinkId]>,
    last_use: AtomicU64,
}

/// One lock's worth of cache: the key → entry map plus its approximate
/// retained byte count (see [`entry_bytes`]).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<RouteKey, CacheEntry>,
    bytes: usize,
}

/// Approximate heap footprint of one cached route: the `Arc<[LinkId]>`
/// allocation (payload + strong/weak counts) plus the map's key and entry.
fn entry_bytes(route_len: usize) -> usize {
    use std::mem::size_of;
    route_len * size_of::<LinkId>()
        + 2 * size_of::<usize>()
        + size_of::<RouteKey>()
        + size_of::<CacheEntry>()
}

/// Point-in-time counters of a [`RouteCache`], for counter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RouteCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute the route.
    pub misses: u64,
    /// Entries evicted to stay under the byte cap.
    pub evictions: u64,
    /// Routes currently cached.
    pub entries: usize,
    /// Approximate bytes currently retained by cached routes.
    pub retained_bytes: usize,
    /// The configured byte cap (`None` = unbounded).
    pub byte_cap: Option<usize>,
}

/// A thread-safe memo of dimension-order routes.
///
/// Repeated simulation runs on the same mesh shape (figure sweeps, epoch
/// models, schedule search) recompute the same XY/YX routes for every
/// message of every run. This cache computes each `(shape, routing, src,
/// dst)` route once and hands out shared `Arc<[LinkId]>` slices afterwards.
/// It is `Sync`, so one cache can back every engine of a parallel sweep;
/// entries are spread over [`ROUTE_SHARDS`] independently-locked shards so
/// concurrent sweep workers don't serialize on a single lock.
///
/// By default the cache grows without bound — correct for sweeps over a few
/// mesh shapes, unbounded for long-lived services sweeping many. With
/// [`RouteCache::with_byte_cap`] each shard evicts its least-recently-used
/// entries whenever its share of the cap is exceeded; [`RouteCache::stats`]
/// reports hit/miss/eviction counters and retained bytes.
///
/// # Example
///
/// ```
/// use meshcoll_topo::{routing::RouteCache, Mesh, NodeId, RoutingAlgorithm};
/// let cache = RouteCache::new();
/// let mesh = Mesh::square(4)?;
/// let a = cache.route(&mesh, NodeId(0), NodeId(15), RoutingAlgorithm::Xy)?;
/// let b = cache.route(&mesh, NodeId(0), NodeId(15), RoutingAlgorithm::Xy)?;
/// assert_eq!(a, b);
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// # Ok::<(), meshcoll_topo::TopologyError>(())
/// ```
#[derive(Debug, Default)]
pub struct RouteCache {
    shards: [RwLock<Shard>; ROUTE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Monotonic access clock backing the LRU stamps.
    tick: AtomicU64,
    /// Total byte budget across all shards (`0` = unbounded).
    byte_cap: usize,
}

/// Number of independently-locked map shards in a [`RouteCache`].
pub const ROUTE_SHARDS: usize = 16;

fn shard_of(key: &RouteKey) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % ROUTE_SHARDS
}

impl RouteCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        RouteCache::default()
    }

    /// Creates an empty cache that evicts least-recently-used routes once
    /// its approximate retained bytes exceed `bytes` (each of the
    /// [`ROUTE_SHARDS`] shards enforces `bytes / ROUTE_SHARDS`). A cap of
    /// `0` means unbounded.
    pub fn with_byte_cap(bytes: usize) -> Self {
        RouteCache {
            byte_cap: bytes,
            ..RouteCache::default()
        }
    }

    /// The configured byte cap (`None` = unbounded).
    pub fn byte_cap(&self) -> Option<usize> {
        (self.byte_cap > 0).then_some(self.byte_cap)
    }

    /// Returns the route from `src` to `dst` on `mesh`, computing and
    /// memoizing it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if either node is out of
    /// range (error results are not cached).
    pub fn route(
        &self,
        mesh: &Mesh,
        src: NodeId,
        dst: NodeId,
        algorithm: RoutingAlgorithm,
    ) -> Result<Arc<[LinkId]>, TopologyError> {
        let key = RouteKey {
            rows: mesh.rows(),
            cols: mesh.cols(),
            torus: mesh.is_torus(),
            algorithm,
            src: src.index(),
            dst: dst.index(),
        };
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[shard_of(&key)];
        if let Some(hit) = shard
            .read()
            .expect("route cache lock poisoned")
            .map
            .get(&key)
        {
            hit.last_use.store(now, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&hit.route));
        }
        let computed: Arc<[LinkId]> = route(mesh, src, dst, algorithm)?.into();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.write().expect("route cache lock poisoned");
        let Shard { map, bytes } = &mut *guard;
        // A racing writer may have inserted the same key; both computed the
        // same deterministic route, so either Arc is fine to return.
        let entry = match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                *bytes += entry_bytes(computed.len());
                e.insert(CacheEntry {
                    route: computed,
                    last_use: AtomicU64::new(now),
                })
            }
        };
        entry.last_use.store(now, Ordering::Relaxed);
        let out = Arc::clone(&entry.route);
        if self.byte_cap > 0 {
            self.evict_lru(&mut guard, &key);
        }
        Ok(out)
    }

    /// Evicts least-recently-used entries from `shard` until it fits its
    /// share of the byte cap. `keep` (the entry just touched) is never
    /// evicted, so a single oversized route cannot thrash.
    fn evict_lru(&self, shard: &mut Shard, keep: &RouteKey) {
        let budget = (self.byte_cap / ROUTE_SHARDS).max(1);
        while shard.bytes > budget && shard.map.len() > 1 {
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_use.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = shard.map.remove(&victim) {
                shard.bytes = shard.bytes.saturating_sub(entry_bytes(e.route.len()));
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of cached routes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("route cache lock poisoned").map.len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute the route.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under the byte cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently retained by cached routes.
    pub fn retained_route_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("route cache lock poisoned").bytes)
            .sum()
    }

    /// A point-in-time snapshot of every counter, for counter reports.
    pub fn stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            entries: self.len(),
            retained_bytes: self.retained_route_bytes(),
            byte_cap: self.byte_cap(),
        }
    }
}

/// The coordinates visited moving from `from` to `to` along one dimension of
/// extent `n` (exclusive of `from`), taking the shorter way around when the
/// dimension wraps.
fn dim_steps(from: usize, to: usize, n: usize, wrap: bool) -> Vec<usize> {
    if from == to {
        return Vec::new();
    }
    let forward = (to + n - from) % n;
    let go_forward = if !wrap {
        to > from
    } else {
        // Shorter way around; ties go forward.
        forward <= n - forward
    };
    let hops = if !wrap {
        to.abs_diff(from)
    } else if go_forward {
        forward
    } else {
        n - forward
    };
    let mut at = from;
    (0..hops)
        .map(|_| {
            at = if go_forward {
                (at + 1) % n
            } else {
                (at + n - 1) % n
            };
            at
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    #[test]
    fn route_length_is_manhattan_distance() {
        let m = Mesh::new(5, 7).unwrap();
        for a in m.node_ids() {
            for b in m.node_ids() {
                let r = xy_route(&m, a, b).unwrap();
                assert_eq!(r.len(), m.distance(a, b));
            }
        }
    }

    #[test]
    fn route_goes_x_first() {
        let m = Mesh::square(4).unwrap();
        let src = m.node_at(Coord::new(0, 0));
        let dst = m.node_at(Coord::new(2, 3));
        let nodes = xy_route_nodes(&m, src, dst).unwrap();
        let coords: Vec<_> = nodes.iter().map(|&n| m.coord(n)).collect();
        // First moves change only the column.
        assert_eq!(coords[1], Coord::new(0, 1));
        assert_eq!(coords[2], Coord::new(0, 2));
        assert_eq!(coords[3], Coord::new(0, 3));
        assert_eq!(coords[4], Coord::new(1, 3));
        assert_eq!(coords[5], Coord::new(2, 3));
    }

    #[test]
    fn self_route_is_empty() {
        let m = Mesh::square(3).unwrap();
        assert!(xy_route(&m, NodeId(4), NodeId(4)).unwrap().is_empty());
        assert_eq!(
            xy_route_nodes(&m, NodeId(4), NodeId(4)).unwrap(),
            vec![NodeId(4)]
        );
    }

    #[test]
    fn route_links_are_contiguous() {
        let m = Mesh::new(6, 3).unwrap();
        let r = xy_route(&m, NodeId(0), NodeId(17)).unwrap();
        let mut at = NodeId(0);
        for l in r {
            let (s, d) = m.link_endpoints(l);
            assert_eq!(s, at);
            at = d;
        }
        assert_eq!(at, NodeId(17));
    }

    #[test]
    fn yx_route_goes_rows_first() {
        let m = Mesh::square(4).unwrap();
        let src = m.node_at(Coord::new(0, 0));
        let dst = m.node_at(Coord::new(2, 3));
        let xy = xy_route(&m, src, dst).unwrap();
        let yx = yx_route(&m, src, dst).unwrap();
        assert_eq!(xy.len(), yx.len());
        assert_ne!(xy, yx);
        // First YX hop moves south.
        let (_, first_dst) = m.link_endpoints(yx[0]);
        assert_eq!(m.coord(first_dst), Coord::new(1, 0));
    }

    #[test]
    fn routing_dispatch_matches_variants() {
        let m = Mesh::square(3).unwrap();
        let (a, b) = (NodeId(0), NodeId(8));
        assert_eq!(
            route(&m, a, b, RoutingAlgorithm::Xy).unwrap(),
            xy_route(&m, a, b).unwrap()
        );
        assert_eq!(
            route(&m, a, b, RoutingAlgorithm::Yx).unwrap(),
            yx_route(&m, a, b).unwrap()
        );
        // Same-row/column routes coincide under both orders.
        assert_eq!(
            route(&m, NodeId(0), NodeId(2), RoutingAlgorithm::Yx).unwrap(),
            xy_route(&m, NodeId(0), NodeId(2)).unwrap()
        );
    }

    #[test]
    fn out_of_range_is_error() {
        let m = Mesh::square(2).unwrap();
        assert!(xy_route(&m, NodeId(0), NodeId(99)).is_err());
        assert!(
            for_each_route_link(&m, NodeId(0), NodeId(99), RoutingAlgorithm::Xy, |_| {}).is_err()
        );
    }

    #[test]
    fn allocation_free_walker_matches_route_everywhere() {
        for m in [
            Mesh::new(5, 7).unwrap(),
            Mesh::new(1, 4).unwrap(),
            Mesh::torus(4, 5).unwrap(),
            Mesh::torus(3, 3).unwrap(),
        ] {
            for algo in [RoutingAlgorithm::Xy, RoutingAlgorithm::Yx] {
                for a in m.node_ids() {
                    for b in m.node_ids() {
                        let mut walked = Vec::new();
                        for_each_route_link(&m, a, b, algo, |l| walked.push(l)).unwrap();
                        assert_eq!(
                            walked,
                            route(&m, a, b, algo).unwrap(),
                            "{m} {algo:?} {a}->{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_returns_computed_routes() {
        let cache = RouteCache::new();
        let m = Mesh::new(3, 5).unwrap();
        for a in m.node_ids() {
            for b in m.node_ids() {
                for algo in [RoutingAlgorithm::Xy, RoutingAlgorithm::Yx] {
                    let cached = cache.route(&m, a, b, algo).unwrap();
                    assert_eq!(cached.as_ref(), route(&m, a, b, algo).unwrap().as_slice());
                }
            }
        }
        assert_eq!(cache.misses(), (15 * 15 * 2) as u64);
        assert_eq!(cache.hits(), 0);
        cache
            .route(&m, NodeId(0), NodeId(14), RoutingAlgorithm::Xy)
            .unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn cache_distinguishes_shape_routing_and_wrap() {
        let cache = RouteCache::new();
        let mesh = Mesh::square(4).unwrap();
        let torus = Mesh::torus(4, 4).unwrap();
        let (a, b) = (NodeId(0), NodeId(3));
        let plain = cache.route(&mesh, a, b, RoutingAlgorithm::Xy).unwrap();
        let wrapped = cache.route(&torus, a, b, RoutingAlgorithm::Xy).unwrap();
        // 0 -> 3 is three hops east on the mesh, one hop west on the torus.
        assert_eq!(plain.len(), 3);
        assert_eq!(wrapped.len(), 1);
        assert_eq!(cache.len(), 2);
        // Same-row routes coincide across XY/YX but are cached separately.
        let yx = cache.route(&mesh, a, b, RoutingAlgorithm::Yx).unwrap();
        assert_eq!(plain, yx);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = std::sync::Arc::new(RouteCache::new());
        let m = Mesh::square(4).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let m = m.clone();
                s.spawn(move || {
                    for a in m.node_ids() {
                        for b in m.node_ids() {
                            cache.route(&m, a, b, RoutingAlgorithm::Xy).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 16 * 16);
        assert_eq!(cache.hits() + cache.misses(), (4 * 16 * 16) as u64);
    }

    #[test]
    fn cache_does_not_memoize_errors() {
        let cache = RouteCache::new();
        let m = Mesh::square(2).unwrap();
        assert!(cache
            .route(&m, NodeId(0), NodeId(99), RoutingAlgorithm::Xy)
            .is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = RouteCache::new();
        let m = Mesh::square(8).unwrap();
        for s in 0..64 {
            for d in 0..64 {
                cache
                    .route(&m, NodeId(s), NodeId(d), RoutingAlgorithm::Xy)
                    .unwrap();
            }
        }
        assert_eq!(cache.byte_cap(), None);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 64 * 64);
        assert!(cache.retained_route_bytes() > 0);
    }

    #[test]
    fn byte_cap_bounds_retained_bytes_and_counts_evictions() {
        let cap = 4 * 1024;
        let cache = RouteCache::with_byte_cap(cap);
        let m = Mesh::square(16).unwrap();
        for s in 0..256 {
            for d in 0..256 {
                cache
                    .route(&m, NodeId(s), NodeId(d), RoutingAlgorithm::Xy)
                    .unwrap();
            }
        }
        assert_eq!(cache.byte_cap(), Some(cap));
        assert!(cache.evictions() > 0, "cap should have forced evictions");
        // Each shard may overshoot by at most one entry (the freshly
        // inserted one is never evicted), so the whole cache stays within
        // cap + ROUTE_SHARDS * max_entry overhead. The longest 16x16 route
        // is 30 links, bounding one entry well under 512 bytes.
        assert!(
            cache.retained_route_bytes() < cap + ROUTE_SHARDS * 512,
            "retained {} bytes exceeds cap {}",
            cache.retained_route_bytes(),
            cap
        );
        assert_eq!(cache.misses() - cache.evictions(), cache.len() as u64);
    }

    #[test]
    fn capped_cache_still_serves_correct_routes() {
        let cap = 2 * 1024;
        let cache = RouteCache::with_byte_cap(cap);
        let m = Mesh::square(8).unwrap();
        for pass in 0..2 {
            for s in 0..64 {
                for d in 0..64 {
                    let got = cache
                        .route(&m, NodeId(s), NodeId(d), RoutingAlgorithm::Xy)
                        .unwrap();
                    let want = route(&m, NodeId(s), NodeId(d), RoutingAlgorithm::Xy).unwrap();
                    assert_eq!(&got[..], &want[..], "pass {pass} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn lru_keeps_the_recently_used_entry() {
        // Cap small enough that each shard holds roughly one entry; the
        // entry touched on every iteration must survive while cold ones
        // churn.
        let cache = RouteCache::with_byte_cap(ROUTE_SHARDS * 200);
        let m = Mesh::square(8).unwrap();
        let hot = (NodeId(0), NodeId(63));
        cache.route(&m, hot.0, hot.1, RoutingAlgorithm::Xy).unwrap();
        let mut hot_hits = 0;
        for d in 1..63 {
            cache
                .route(&m, NodeId(0), NodeId(d), RoutingAlgorithm::Xy)
                .unwrap();
            let before = cache.hits();
            cache.route(&m, hot.0, hot.1, RoutingAlgorithm::Xy).unwrap();
            if cache.hits() > before {
                hot_hits += 1;
            }
        }
        // The hot route shares its shard with only ~1/16th of the cold
        // keys, and it is re-stamped every iteration, so the vast majority
        // of its lookups must be hits.
        assert!(hot_hits > 50, "hot entry evicted too often: {hot_hits}/62");
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let cache = RouteCache::with_byte_cap(1 << 20);
        let m = Mesh::square(4).unwrap();
        cache
            .route(&m, NodeId(0), NodeId(15), RoutingAlgorithm::Xy)
            .unwrap();
        cache
            .route(&m, NodeId(0), NodeId(15), RoutingAlgorithm::Xy)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.entries, 1);
        assert_eq!(s.byte_cap, Some(1 << 20));
        assert_eq!(s.retained_bytes, cache.retained_route_bytes());
    }
}
