//! Timed fault arrivals for online (mid-run) failure injection.
//!
//! A [`FaultTimeline`] layers *when* on top of the static [`FaultModel`]'s
//! *what*: each [`FaultEvent`] names a link or chiplet and the simulation
//! timestamp at which it dies. Engines that support online faults (the
//! per-packet NoC engine) apply the events as the simulated clock passes
//! them; engines that do not (the flit engine) must reject a non-empty
//! timeline with a typed error rather than silently ignoring it.
//!
//! Timeline deaths are permanent — unlike [`crate::fault::LinkFlap`]
//! windows, a link or chiplet that dies at `t_ns` never comes back. The
//! repaired schedule suffix must route around it.

use crate::{FaultModel, LinkId, Mesh, NodeId, TopologyError};

/// One timed, permanent fault arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A directed link dies at `t_ns`; transmissions already serialized onto
    /// the link complete, nothing new may start at or after `t_ns`.
    LinkDiesAt {
        /// The dying directed link.
        link: LinkId,
        /// Death timestamp (ns, simulation clock).
        t_ns: f64,
    },
    /// A chiplet dies at `t_ns`; all its links become unusable and any
    /// packet destined for (or relayed through) it is lost.
    ChipletDiesAt {
        /// The dying chiplet.
        node: NodeId,
        /// Death timestamp (ns, simulation clock).
        t_ns: f64,
    },
}

impl FaultEvent {
    /// The death timestamp of the event (ns).
    pub fn at_ns(&self) -> f64 {
        match *self {
            FaultEvent::LinkDiesAt { t_ns, .. } | FaultEvent::ChipletDiesAt { t_ns, .. } => t_ns,
        }
    }

    /// Folds the event into a static fault overlay: the state of the world
    /// *after* the event has fired.
    pub fn apply(&self, overlay: &mut FaultModel) {
        match *self {
            FaultEvent::LinkDiesAt { link, .. } => overlay.fail_link(link),
            FaultEvent::ChipletDiesAt { node, .. } => overlay.fail_node(node),
        }
    }
}

/// An ordered sequence of timed fault arrivals.
///
/// Events are kept sorted by timestamp (stable for ties, so two faults at
/// the same instant apply in insertion order). The timeline is carried on
/// `NocConfig` next to the static `FaultModel`; an empty timeline costs the
/// engines nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// An empty timeline (no mid-run faults).
    pub fn new() -> Self {
        FaultTimeline::default()
    }

    /// True when no timed fault is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of timed fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Adds an event, keeping the timeline sorted by timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the event timestamp is NaN or negative — a fault cannot
    /// arrive before the run starts.
    pub fn push(&mut self, event: FaultEvent) {
        assert!(
            event.at_ns() >= 0.0,
            "fault event timestamp must be finite and >= 0, got {}",
            event.at_ns()
        );
        let pos = self.events.partition_point(|e| e.at_ns() <= event.at_ns());
        self.events.insert(pos, event);
    }

    /// Convenience: a single link death at `t_ns`.
    pub fn link_dies_at(&mut self, link: LinkId, t_ns: f64) {
        self.push(FaultEvent::LinkDiesAt { link, t_ns });
    }

    /// Convenience: a single chiplet death at `t_ns`.
    pub fn chiplet_dies_at(&mut self, node: NodeId, t_ns: f64) {
        self.push(FaultEvent::ChipletDiesAt { node, t_ns });
    }

    /// The events, sorted by timestamp (ties in insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Timestamp of the earliest event, if any.
    pub fn first_at_ns(&self) -> Option<f64> {
        self.events.first().map(FaultEvent::at_ns)
    }

    /// Drops every event strictly before `t_ns` — used when resuming a
    /// repaired schedule suffix: faults already applied must not re-fire.
    pub fn discard_before(&mut self, t_ns: f64) {
        self.events.retain(|e| e.at_ns() >= t_ns);
    }

    /// Folds every event at or before `t_ns` into `overlay` and removes it
    /// from the timeline. Returns the number of events applied.
    pub fn apply_through(&mut self, t_ns: f64, overlay: &mut FaultModel) -> usize {
        let cut = self.events.partition_point(|e| e.at_ns() <= t_ns);
        for e in self.events.drain(..cut) {
            e.apply(overlay);
        }
        cut
    }

    /// Checks that every event references a real link/chiplet of `mesh`.
    ///
    /// # Errors
    ///
    /// Fails when an event names a node or link id out of range for `mesh`.
    pub fn validate(&self, mesh: &Mesh) -> Result<(), TopologyError> {
        for e in &self.events {
            match *e {
                FaultEvent::LinkDiesAt { link, .. } => {
                    if link.index() >= mesh.link_id_space() {
                        return Err(TopologyError::NodeOutOfRange {
                            node: link.index(),
                            nodes: mesh.link_id_space(),
                        });
                    }
                }
                FaultEvent::ChipletDiesAt { node, .. } => mesh.check_node(node)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_events_sorted_with_stable_ties() {
        let mut tl = FaultTimeline::new();
        tl.link_dies_at(LinkId(3), 200.0);
        tl.link_dies_at(LinkId(1), 100.0);
        tl.link_dies_at(LinkId(2), 100.0);
        let at: Vec<f64> = tl.events().iter().map(FaultEvent::at_ns).collect();
        assert_eq!(at, [100.0, 100.0, 200.0]);
        // Stable ties: LinkId(1) inserted before LinkId(2) at the same time.
        assert!(matches!(
            tl.events()[0],
            FaultEvent::LinkDiesAt {
                link: LinkId(1),
                ..
            }
        ));
        assert_eq!(tl.first_at_ns(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "timestamp must be finite")]
    fn nan_timestamp_is_rejected() {
        let mut tl = FaultTimeline::new();
        tl.link_dies_at(LinkId(0), f64::NAN);
    }

    #[test]
    fn apply_through_folds_into_overlay() {
        let mut tl = FaultTimeline::new();
        tl.link_dies_at(LinkId(5), 50.0);
        tl.chiplet_dies_at(NodeId(2), 150.0);
        let mut overlay = FaultModel::new();
        assert_eq!(tl.apply_through(100.0, &mut overlay), 1);
        assert!(overlay.link_failed(LinkId(5)));
        assert!(!overlay.node_failed(NodeId(2)));
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.apply_through(200.0, &mut overlay), 1);
        assert!(overlay.node_failed(NodeId(2)));
        assert!(tl.is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range_events() {
        let mesh = Mesh::square(3).unwrap();
        let mut tl = FaultTimeline::new();
        tl.chiplet_dies_at(NodeId(99), 10.0);
        assert!(tl.validate(&mesh).is_err());
        let mut tl2 = FaultTimeline::new();
        tl2.link_dies_at(LinkId(10_000), 10.0);
        assert!(tl2.validate(&mesh).is_err());
    }
}
