use std::fmt;

use crate::TopologyError;

/// Identifier of a chiplet (node) in a mesh, numbered row-major from 0.
///
/// The paper numbers nodes 1..`n·m`; we use the same row-major order but
/// 0-based, so paper node `k` is `NodeId(k - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Identifier of a *directed* link, densely numbered `src_node * 4 + direction`.
///
/// Every node reserves four slots (one per [`Direction`]); slots on the mesh
/// boundary are simply never used. This keeps link lookup O(1) without a map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A (row, col) position in the mesh. Row 0 is the top row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Row index, 0-based from the top.
    pub row: usize,
    /// Column index, 0-based from the left.
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// One of the four mesh directions an outgoing link can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger columns.
    East,
    /// Toward smaller columns.
    West,
    /// Toward smaller rows.
    North,
    /// Toward larger rows.
    South,
}

impl Direction {
    /// All four directions, in link-slot order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// Index of this direction in a node's 4-wide link/port slot space.
    #[inline]
    pub fn slot(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
        };
        f.write_str(s)
    }
}

/// A 2D mesh of `rows x cols` chiplets with bidirectional neighbor links.
///
/// Links are directed: the physical bidirectional interconnect between two
/// neighbor chiplets is a pair of [`LinkId`]s, one per direction, matching the
/// paper's link accounting (an `n x n` mesh has `4n^2 - 4n` directed links).
///
/// # Example
///
/// ```
/// use meshcoll_topo::Mesh;
/// let mesh = Mesh::new(8, 8)?;
/// assert_eq!(mesh.directed_links(), 224);
/// # Ok::<(), meshcoll_topo::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mesh {
    rows: usize,
    cols: usize,
    wraparound: bool,
}

/// Largest supported chiplet count per mesh.
///
/// Two dense index spaces must stay representable: the per-node link slots
/// (`nodes * 4`, see [`Mesh::link_id_space`]) and the collectives' `u32`
/// op ids (a schedule emits multiple ops per node). Capping nodes at
/// `u32::MAX / 4` keeps both safe with room to spare — a silent `rows *
/// cols` wrap would otherwise alias distinct chiplets at extreme sizes.
pub const MAX_NODES: usize = (u32::MAX / 4) as usize;

/// Rejects dimensions that are zero or whose product exceeds [`MAX_NODES`]
/// (including `usize` overflow of `rows * cols` itself).
fn check_dims(rows: usize, cols: usize) -> Result<(), TopologyError> {
    if rows == 0 || cols == 0 {
        return Err(TopologyError::EmptyMesh);
    }
    match rows.checked_mul(cols) {
        Some(n) if n <= MAX_NODES => Ok(()),
        _ => Err(TopologyError::MeshTooLarge {
            rows,
            cols,
            max_nodes: MAX_NODES,
        }),
    }
}

impl Mesh {
    /// Creates a `rows x cols` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyMesh`] if either dimension is zero and
    /// [`TopologyError::MeshTooLarge`] if `rows * cols` exceeds
    /// [`MAX_NODES`].
    pub fn new(rows: usize, cols: usize) -> Result<Self, TopologyError> {
        check_dims(rows, cols)?;
        Ok(Mesh {
            rows,
            cols,
            wraparound: false,
        })
    }

    /// Creates a square `n x n` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyMesh`] if `n` is zero.
    pub fn square(n: usize) -> Result<Self, TopologyError> {
        Mesh::new(n, n)
    }

    /// Creates a `rows x cols` torus: a mesh with wrap-around links in both
    /// dimensions. The paper's motivation (§III) is exactly that MCM
    /// packages lack these links; the torus lets experiments quantify what
    /// the wrap-arounds would have bought.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::MeshTooSmall`] unless both dimensions are at
    /// least 3 (a 2-wide wrap would duplicate the existing neighbor link),
    /// and [`TopologyError::MeshTooLarge`] if `rows * cols` exceeds
    /// [`MAX_NODES`].
    pub fn torus(rows: usize, cols: usize) -> Result<Self, TopologyError> {
        if rows < 3 || cols < 3 {
            return Err(TopologyError::MeshTooSmall {
                min: (3, 3),
                got: (rows, cols),
            });
        }
        check_dims(rows, cols)?;
        Ok(Mesh {
            rows,
            cols,
            wraparound: true,
        })
    }

    /// `true` when this topology has wrap-around links (torus).
    #[inline]
    pub fn is_torus(&self) -> bool {
        self.wraparound
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of chiplets.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when both dimensions are odd (the paper's "odd-sized" mesh,
    /// which has no Hamiltonian cycle).
    pub fn is_odd_sized(&self) -> bool {
        self.rows % 2 == 1 && self.cols % 2 == 1
    }

    /// Number of *directed* links: `2*(rows*(cols-1) + cols*(rows-1))` for a
    /// mesh, `4*rows*cols` for a torus (every node drives all four
    /// directions).
    pub fn directed_links(&self) -> usize {
        if self.wraparound {
            4 * self.rows * self.cols
        } else {
            2 * (self.rows * (self.cols - 1) + self.cols * (self.rows - 1))
        }
    }

    /// Size of the dense link-id space (`nodes * 4`); some ids in this space
    /// correspond to boundary slots that carry no physical link.
    pub fn link_id_space(&self) -> usize {
        self.nodes() * 4
    }

    /// The node at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.row < self.rows && c.col < self.cols,
            "coord {c} outside mesh"
        );
        NodeId(c.row * self.cols + c.col)
    }

    /// The coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[inline]
    pub fn coord(&self, n: NodeId) -> Coord {
        assert!(n.0 < self.nodes(), "node {n} outside mesh");
        Coord::new(n.0 / self.cols, n.0 % self.cols)
    }

    /// Checks that a node is in range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] when it is not.
    pub fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.0 < self.nodes() {
            Ok(())
        } else {
            Err(TopologyError::NodeOutOfRange {
                node: n.0,
                nodes: self.nodes(),
            })
        }
    }

    /// The neighbor of `n` in direction `d`, if it exists (on a torus every
    /// direction wraps, so it always exists).
    pub fn neighbor(&self, n: NodeId, d: Direction) -> Option<NodeId> {
        let c = self.coord(n);
        let nc = match d {
            Direction::East if c.col + 1 < self.cols => Coord::new(c.row, c.col + 1),
            Direction::West if c.col > 0 => Coord::new(c.row, c.col - 1),
            Direction::North if c.row > 0 => Coord::new(c.row - 1, c.col),
            Direction::South if c.row + 1 < self.rows => Coord::new(c.row + 1, c.col),
            Direction::East if self.wraparound => Coord::new(c.row, 0),
            Direction::West if self.wraparound => Coord::new(c.row, self.cols - 1),
            Direction::North if self.wraparound => Coord::new(self.rows - 1, c.col),
            Direction::South if self.wraparound => Coord::new(0, c.col),
            _ => return None,
        };
        Some(self.node_at(nc))
    }

    /// All physical neighbors of a node (2 on corners, 3 on edges, 4 inside).
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        Direction::ALL
            .iter()
            .filter_map(|&d| self.neighbor(n, d))
            .collect()
    }

    /// Whether `a` and `b` are distinct physical neighbors.
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        let (ca, cb) = (self.coord(a), self.coord(b));
        let dr = self.row_dist(ca.row, cb.row);
        let dc = self.col_dist(ca.col, cb.col);
        dr + dc == 1
    }

    #[inline]
    fn row_dist(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        if self.wraparound {
            d.min(self.rows - d)
        } else {
            d
        }
    }

    #[inline]
    fn col_dist(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        if self.wraparound {
            d.min(self.cols - d)
        } else {
            d
        }
    }

    /// The direction from `src` toward adjacent node `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotAdjacent`] if the nodes are not neighbors.
    pub fn direction_between(&self, src: NodeId, dst: NodeId) -> Result<Direction, TopologyError> {
        let (cs, cd) = (self.coord(src), self.coord(dst));
        if cs.row == cd.row && cd.col == cs.col + 1 {
            Ok(Direction::East)
        } else if cs.row == cd.row && cs.col == cd.col + 1 {
            Ok(Direction::West)
        } else if cs.col == cd.col && cd.row + 1 == cs.row {
            Ok(Direction::North)
        } else if cs.col == cd.col && cs.row + 1 == cd.row {
            Ok(Direction::South)
        } else if self.wraparound && cs.row == cd.row && cs.col + 1 == self.cols && cd.col == 0 {
            Ok(Direction::East)
        } else if self.wraparound && cs.row == cd.row && cs.col == 0 && cd.col + 1 == self.cols {
            Ok(Direction::West)
        } else if self.wraparound && cs.col == cd.col && cs.row == 0 && cd.row + 1 == self.rows {
            Ok(Direction::North)
        } else if self.wraparound && cs.col == cd.col && cs.row + 1 == self.rows && cd.row == 0 {
            Ok(Direction::South)
        } else {
            Err(TopologyError::NotAdjacent {
                src: src.0,
                dst: dst.0,
            })
        }
    }

    /// The directed link from `src` to adjacent node `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotAdjacent`] if the nodes are not neighbors.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Result<LinkId, TopologyError> {
        let d = self.direction_between(src, dst)?;
        Ok(LinkId(src.0 * 4 + d.slot()))
    }

    /// The `(src, dst)` endpoints of a directed link.
    ///
    /// # Panics
    ///
    /// Panics if the link id does not correspond to a physical link.
    pub fn link_endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        let src = NodeId(l.0 / 4);
        let d = Direction::ALL[l.0 % 4];
        let dst = self
            .neighbor(src, d)
            .unwrap_or_else(|| panic!("link {l} points off the mesh boundary"));
        (src, dst)
    }

    /// Iterates over all node ids in row-major order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes()).map(NodeId)
    }

    /// Iterates over all physical directed links as `(src, dst, link)`.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkId)> + '_ {
        self.node_ids().flat_map(move |src| {
            Direction::ALL.iter().filter_map(move |&d| {
                self.neighbor(src, d)
                    .map(|dst| (src, dst, LinkId(src.0 * 4 + d.slot())))
            })
        })
    }

    /// The four corner nodes `(top-left, top-right, bottom-left, bottom-right)`.
    pub fn corners(&self) -> [NodeId; 4] {
        [
            self.node_at(Coord::new(0, 0)),
            self.node_at(Coord::new(0, self.cols - 1)),
            self.node_at(Coord::new(self.rows - 1, 0)),
            self.node_at(Coord::new(self.rows - 1, self.cols - 1)),
        ]
    }

    /// Hop distance between two nodes (Manhattan on a mesh; wrap-aware on a
    /// torus).
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ca, cb) = (self.coord(a), self.coord(b));
        self.row_dist(ca.row, cb.row) + self.col_dist(ca.col, cb.col)
    }

    /// The directed links crossing the vertical cut between columns
    /// `boundary - 1` and `boundary`, in the given direction (`eastward`
    /// means column `boundary - 1` → column `boundary`). One link per row.
    ///
    /// On a torus the wraparound links between the first and last column
    /// bypass this cut, so these links alone do not separate the topology —
    /// the full directed cut for the partition `[0, boundary)` vs
    /// `[boundary, cols)` additionally contains [`Mesh::column_wrap_links`]
    /// in the same partition direction.
    ///
    /// Panics unless `1 <= boundary < cols`.
    pub fn column_cut_links(
        &self,
        boundary: usize,
        eastward: bool,
    ) -> impl Iterator<Item = LinkId> + '_ {
        assert!(
            boundary >= 1 && boundary < self.cols,
            "column cut boundary {boundary} out of range for {self}"
        );
        (0..self.rows).map(move |row| {
            let (col, d) = if eastward {
                (boundary - 1, Direction::East)
            } else {
                (boundary, Direction::West)
            };
            LinkId(self.node_at(Coord::new(row, col)).0 * 4 + d.slot())
        })
    }

    /// The directed wraparound links joining the first and last columns, in
    /// the given *partition* direction: `eastward` means from the low-column
    /// side `[0, boundary)` to the high-column side `[boundary, cols)` of a
    /// vertical cut — physically the West links of column `0`, which wrap to
    /// column `cols - 1`. One link per row.
    ///
    /// Together with [`Mesh::column_cut_links`]`(boundary, eastward)` these
    /// form the complete directed cut of the column partition on a torus,
    /// which is what makes the analyzer's bisection bound wrap-aware.
    ///
    /// Panics unless the topology is a torus.
    pub fn column_wrap_links(&self, eastward: bool) -> impl Iterator<Item = LinkId> + '_ {
        assert!(self.wraparound, "column wrap links exist only on a torus");
        (0..self.rows).map(move |row| {
            let (col, d) = if eastward {
                (0, Direction::West)
            } else {
                (self.cols - 1, Direction::East)
            };
            LinkId(self.node_at(Coord::new(row, col)).0 * 4 + d.slot())
        })
    }

    /// The directed wraparound links joining the first and last rows, in the
    /// given *partition* direction (`southward` = from the low-row side of a
    /// horizontal cut to the high-row side); the row analogue of
    /// [`Mesh::column_wrap_links`]. One link per column.
    ///
    /// Panics unless the topology is a torus.
    pub fn row_wrap_links(&self, southward: bool) -> impl Iterator<Item = LinkId> + '_ {
        assert!(self.wraparound, "row wrap links exist only on a torus");
        (0..self.cols).map(move |col| {
            let (row, d) = if southward {
                (0, Direction::North)
            } else {
                (self.rows - 1, Direction::South)
            };
            LinkId(self.node_at(Coord::new(row, col)).0 * 4 + d.slot())
        })
    }

    /// The directed links crossing the horizontal cut between rows
    /// `boundary - 1` and `boundary`, in the given direction (`southward`
    /// means row `boundary - 1` → row `boundary`). One link per column.
    ///
    /// The torus caveat of [`Mesh::column_cut_links`] applies here too.
    ///
    /// Panics unless `1 <= boundary < rows`.
    pub fn row_cut_links(
        &self,
        boundary: usize,
        southward: bool,
    ) -> impl Iterator<Item = LinkId> + '_ {
        assert!(
            boundary >= 1 && boundary < self.rows,
            "row cut boundary {boundary} out of range for {self}"
        );
        (0..self.cols).map(move |col| {
            let (row, d) = if southward {
                (boundary - 1, Direction::South)
            } else {
                (boundary, Direction::North)
            };
            LinkId(self.node_at(Coord::new(row, col)).0 * 4 + d.slot())
        })
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} {}",
            self.rows,
            self.cols,
            if self.wraparound { "torus" } else { "mesh" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_mesh() {
        assert_eq!(Mesh::new(0, 3), Err(TopologyError::EmptyMesh));
        assert_eq!(Mesh::new(3, 0), Err(TopologyError::EmptyMesh));
    }

    #[test]
    fn rejects_oversized_mesh() {
        // rows * cols overflows usize entirely.
        assert_eq!(
            Mesh::new(usize::MAX, 2),
            Err(TopologyError::MeshTooLarge {
                rows: usize::MAX,
                cols: 2,
                max_nodes: MAX_NODES,
            })
        );
        // Product fits usize but exceeds the dense-index cap.
        assert!(matches!(
            Mesh::new(MAX_NODES, 2),
            Err(TopologyError::MeshTooLarge { .. })
        ));
        assert!(matches!(
            Mesh::torus(MAX_NODES, 3),
            Err(TopologyError::MeshTooLarge { .. })
        ));
        // The boundary itself is fine.
        assert!(Mesh::new(MAX_NODES, 1).is_ok());
        // Large fabrics well past 64x64 construct without issue.
        assert!(Mesh::new(4096, 4096).is_ok());
    }

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh::new(3, 5).unwrap();
        for n in m.node_ids() {
            assert_eq!(m.node_at(m.coord(n)), n);
        }
    }

    #[test]
    fn paper_link_counts() {
        // Paper §V-B: an n x n mesh has 4n^2 - 4n directed links.
        for n in 2..12 {
            let m = Mesh::square(n).unwrap();
            assert_eq!(m.directed_links(), 4 * n * n - 4 * n);
        }
    }

    #[test]
    fn links_iterator_matches_count() {
        for (r, c) in [(1, 1), (1, 5), (3, 3), (4, 7), (9, 9)] {
            let m = Mesh::new(r, c).unwrap();
            let links: Vec<_> = m.links().collect();
            assert_eq!(links.len(), m.directed_links());
            // All links distinct and endpoints adjacent.
            let mut ids: Vec<_> = links.iter().map(|(_, _, l)| l.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), links.len());
            for (s, d, l) in links {
                assert!(m.are_adjacent(s, d));
                assert_eq!(m.link_between(s, d).unwrap(), l);
                assert_eq!(m.link_endpoints(l), (s, d));
            }
        }
    }

    #[test]
    fn neighbor_counts() {
        let m = Mesh::square(3).unwrap();
        assert_eq!(m.neighbors(NodeId(0)).len(), 2); // corner
        assert_eq!(m.neighbors(NodeId(1)).len(), 3); // edge
        assert_eq!(m.neighbors(NodeId(4)).len(), 4); // center
    }

    #[test]
    fn direction_between_works() {
        let m = Mesh::square(3).unwrap();
        assert_eq!(
            m.direction_between(NodeId(0), NodeId(1)),
            Ok(Direction::East)
        );
        assert_eq!(
            m.direction_between(NodeId(1), NodeId(0)),
            Ok(Direction::West)
        );
        assert_eq!(
            m.direction_between(NodeId(0), NodeId(3)),
            Ok(Direction::South)
        );
        assert_eq!(
            m.direction_between(NodeId(3), NodeId(0)),
            Ok(Direction::North)
        );
        assert!(m.direction_between(NodeId(0), NodeId(4)).is_err());
        assert!(m.direction_between(NodeId(0), NodeId(0)).is_err());
    }

    #[test]
    fn odd_sized_detection() {
        assert!(Mesh::new(3, 5).unwrap().is_odd_sized());
        assert!(!Mesh::new(3, 4).unwrap().is_odd_sized());
        assert!(!Mesh::new(4, 4).unwrap().is_odd_sized());
    }

    #[test]
    fn corners_are_corners() {
        let m = Mesh::new(3, 5).unwrap();
        let [tl, tr, bl, br] = m.corners();
        assert_eq!(tl, NodeId(0));
        assert_eq!(tr, NodeId(4));
        assert_eq!(bl, NodeId(10));
        assert_eq!(br, NodeId(14));
    }

    #[test]
    fn distance_is_manhattan() {
        let m = Mesh::new(4, 4).unwrap();
        assert_eq!(m.distance(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.distance(NodeId(5), NodeId(5)), 0);
    }

    #[test]
    fn cut_links_straddle_their_boundary() {
        let m = Mesh::new(3, 5).unwrap();
        for boundary in 1..m.cols() {
            for eastward in [true, false] {
                let links: Vec<LinkId> = m.column_cut_links(boundary, eastward).collect();
                assert_eq!(links.len(), m.rows());
                for l in links {
                    let (src, dst) = m.link_endpoints(l);
                    let (cs, cd) = (m.coord(src), m.coord(dst));
                    if eastward {
                        assert_eq!((cs.col, cd.col), (boundary - 1, boundary));
                    } else {
                        assert_eq!((cs.col, cd.col), (boundary, boundary - 1));
                    }
                }
            }
        }
        for boundary in 1..m.rows() {
            for southward in [true, false] {
                let links: Vec<LinkId> = m.row_cut_links(boundary, southward).collect();
                assert_eq!(links.len(), m.cols());
                for l in links {
                    let (src, dst) = m.link_endpoints(l);
                    let (cs, cd) = (m.coord(src), m.coord(dst));
                    if southward {
                        assert_eq!((cs.row, cd.row), (boundary - 1, boundary));
                    } else {
                        assert_eq!((cs.row, cd.row), (boundary, boundary - 1));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_boundary_zero_is_rejected() {
        let m = Mesh::square(3).unwrap();
        let _ = m.column_cut_links(0, true);
    }

    #[test]
    fn wrap_links_cross_the_partition_in_the_stated_direction() {
        let m = Mesh::torus(3, 4).unwrap();
        for eastward in [true, false] {
            let links: Vec<LinkId> = m.column_wrap_links(eastward).collect();
            assert_eq!(links.len(), m.rows());
            for l in links {
                let (src, dst) = m.link_endpoints(l);
                let (cs, cd) = (m.coord(src), m.coord(dst));
                assert_eq!(cs.row, cd.row);
                if eastward {
                    // Low-column side (col 0) to high-column side (last col).
                    assert_eq!((cs.col, cd.col), (0, m.cols() - 1));
                } else {
                    assert_eq!((cs.col, cd.col), (m.cols() - 1, 0));
                }
            }
        }
        for southward in [true, false] {
            let links: Vec<LinkId> = m.row_wrap_links(southward).collect();
            assert_eq!(links.len(), m.cols());
            for l in links {
                let (src, dst) = m.link_endpoints(l);
                let (cs, cd) = (m.coord(src), m.coord(dst));
                assert_eq!(cs.col, cd.col);
                if southward {
                    assert_eq!((cs.row, cd.row), (0, m.rows() - 1));
                } else {
                    assert_eq!((cs.row, cd.row), (m.rows() - 1, 0));
                }
            }
        }
        // The wrap links are disjoint from every interior cut's links, so
        // adding them genuinely doubles a cut's aggregate capacity.
        let interior: Vec<LinkId> = m.column_cut_links(1, true).collect();
        for l in m.column_wrap_links(true) {
            assert!(!interior.contains(&l));
        }
    }

    #[test]
    #[should_panic(expected = "only on a torus")]
    fn wrap_links_require_a_torus() {
        let m = Mesh::square(3).unwrap();
        let _ = m.column_wrap_links(true);
    }
}
