//! Hamiltonian-cycle constructions for ring-based AllReduce.
//!
//! A `rows x cols` mesh has a Hamiltonian cycle iff `rows * cols` is even
//! (and both dimensions are at least 2). The bidirectional-ring AllReduce
//! algorithms need such a cycle:
//!
//! * even-sized meshes use the classic boustrophedon ("serpentine") cycle,
//! * odd-sized meshes have no full cycle (paper §III-B), so [`corner_excluded_cycle`]
//!   builds — in linear time — a cycle over all nodes *except the
//!   bottom-right corner*, which is the construction RingBiOdd (paper §IV-A)
//!   relies on.

use crate::{Coord, Mesh, NodeId, TopologyError};

/// Builds a Hamiltonian cycle visiting every node of an even-sized mesh.
///
/// The returned vector lists the nodes in cycle order; the last node is
/// adjacent to the first. Both dimensions must be at least 2 and at least one
/// must be even.
///
/// # Errors
///
/// * [`TopologyError::MeshTooSmall`] if either dimension is 1,
/// * [`TopologyError::NoHamiltonianCycle`] if both dimensions are odd.
///
/// # Example
///
/// ```
/// use meshcoll_topo::{hamiltonian, Mesh};
/// let mesh = Mesh::square(4)?;
/// let cycle = hamiltonian::hamiltonian_cycle(&mesh)?;
/// assert_eq!(cycle.len(), 16);
/// assert!(hamiltonian::is_hamiltonian_cycle(&mesh, &cycle, &[]));
/// # Ok::<(), meshcoll_topo::TopologyError>(())
/// ```
pub fn hamiltonian_cycle(mesh: &Mesh) -> Result<Vec<NodeId>, TopologyError> {
    if mesh.rows() < 2 || mesh.cols() < 2 {
        return Err(TopologyError::MeshTooSmall {
            min: (2, 2),
            got: (mesh.rows(), mesh.cols()),
        });
    }
    if mesh.is_torus() {
        // A torus is Hamiltonian regardless of parity: snake the first
        // cols-1 columns, hook the last column, close with one wrap link.
        return Ok(torus_cycle(mesh));
    }
    if mesh.is_odd_sized() {
        return Err(TopologyError::NoHamiltonianCycle {
            rows: mesh.rows(),
            cols: mesh.cols(),
        });
    }
    let coords = if mesh.rows().is_multiple_of(2) {
        serpentine(mesh.rows(), mesh.cols(), false)
    } else {
        // cols is even: build the transposed cycle and swap coordinates.
        serpentine(mesh.cols(), mesh.rows(), true)
    };
    Ok(coords.into_iter().map(|c| mesh.node_at(c)).collect())
}

/// Hamiltonian cycle of a torus (any parity): boustrophedon over columns
/// `0..cols-1`, then the last column, closed with a single wrap link.
fn torus_cycle(mesh: &Mesh) -> Vec<NodeId> {
    let (m, n) = (mesh.rows(), mesh.cols());
    let mut out = Vec::with_capacity(m * n);
    for r in 0..m {
        if r % 2 == 0 {
            for c in 0..n - 1 {
                out.push(mesh.node_at(Coord::new(r, c)));
            }
        } else {
            for c in (0..n - 1).rev() {
                out.push(mesh.node_at(Coord::new(r, c)));
            }
        }
    }
    // The snake ends at (m-1, n-2) when m is odd, (m-1, 0) when m is even;
    // either way the last column, walked bottom-up, is one hop away (for
    // even m via the west wrap link).
    for r in (0..m).rev() {
        out.push(mesh.node_at(Coord::new(r, n - 1)));
    }
    out
}

/// Serpentine cycle over a grid with an even number of rows: column 0 is the
/// "return lane"; rows snake through columns `1..cols`.
fn serpentine(rows: usize, cols: usize, transpose: bool) -> Vec<Coord> {
    let mk = |r: usize, c: usize| {
        if transpose {
            Coord::new(c, r)
        } else {
            Coord::new(r, c)
        }
    };
    let mut out = Vec::with_capacity(rows * cols);
    out.push(mk(0, 0));
    for r in 0..rows {
        if r % 2 == 0 {
            for c in 1..cols {
                out.push(mk(r, c));
            }
        } else {
            for c in (1..cols).rev() {
                out.push(mk(r, c));
            }
        }
    }
    for r in (1..rows).rev() {
        out.push(mk(r, 0));
    }
    out
}

/// Builds a Hamiltonian *path* visiting every node: the classic row-major
/// boustrophedon (row 0 left-to-right, row 1 right-to-left, ...). It exists
/// for every mesh; the unidirectional Ring AllReduce uses it on odd-sized
/// meshes, closing the ring with a multi-hop link from the last node back to
/// the first.
///
/// # Example
///
/// ```
/// use meshcoll_topo::{hamiltonian, Mesh};
/// let mesh = Mesh::new(3, 3)?;
/// let path = hamiltonian::serpentine_path(&mesh);
/// assert_eq!(path.len(), 9);
/// # Ok::<(), meshcoll_topo::TopologyError>(())
/// ```
pub fn serpentine_path(mesh: &Mesh) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(mesh.nodes());
    for r in 0..mesh.rows() {
        if r % 2 == 0 {
            for c in 0..mesh.cols() {
                out.push(mesh.node_at(Coord::new(r, c)));
            }
        } else {
            for c in (0..mesh.cols()).rev() {
                out.push(mesh.node_at(Coord::new(r, c)));
            }
        }
    }
    out
}

/// Builds a cycle over all nodes of an odd-sized mesh except the bottom-right
/// corner, returning `(cycle, excluded_corner)`.
///
/// This is the linear-time construction the paper cites for RingBiOdd
/// (§IV-A): excluding one majority-color corner restores the color balance a
/// cycle needs. Both dimensions must be odd and at least 3.
///
/// The construction is a splice recursion: the 3-row base case covers the top
/// row left-to-right and then zig-zags the remaining 2×(cols−1) band; each
/// recursive step grafts two more rows into the top-left horizontal edge of
/// the smaller cycle.
///
/// # Errors
///
/// * [`TopologyError::NotOddMesh`] if either dimension is even,
/// * [`TopologyError::MeshTooSmall`] if either dimension is less than 3.
///
/// # Example
///
/// ```
/// use meshcoll_topo::{hamiltonian, Mesh, NodeId};
/// let mesh = Mesh::square(3)?;
/// let (cycle, excluded) = hamiltonian::corner_excluded_cycle(&mesh)?;
/// assert_eq!(cycle.len(), 8);
/// assert_eq!(excluded, NodeId(8)); // bottom-right corner
/// assert!(hamiltonian::is_hamiltonian_cycle(&mesh, &cycle, &[excluded]));
/// # Ok::<(), meshcoll_topo::TopologyError>(())
/// ```
pub fn corner_excluded_cycle(mesh: &Mesh) -> Result<(Vec<NodeId>, NodeId), TopologyError> {
    let (rows, cols) = (mesh.rows(), mesh.cols());
    if rows % 2 == 0 || cols % 2 == 0 {
        return Err(TopologyError::NotOddMesh { rows, cols });
    }
    if rows < 3 || cols < 3 {
        return Err(TopologyError::MeshTooSmall {
            min: (3, 3),
            got: (rows, cols),
        });
    }
    // Base: 3-row band occupying rows rows-3 .. rows-1.
    let base_top = rows - 3;
    let mut cycle = three_row_base(base_top, cols);
    // Splice two-row detours upward until row 0 is covered.
    let mut top = base_top;
    while top >= 2 {
        splice_two_rows(&mut cycle, top, cols);
        top -= 2;
    }
    let excluded = mesh.node_at(Coord::new(rows - 1, cols - 1));
    let nodes = cycle.into_iter().map(|c| mesh.node_at(c)).collect();
    Ok((nodes, excluded))
}

/// 3-row base cycle over rows `top..top+2`, excluding `(top+2, cols-1)`.
/// Starts `(top,0) -> (top,1)` so the splice invariant holds.
fn three_row_base(top: usize, cols: usize) -> Vec<Coord> {
    let mut out = Vec::with_capacity(3 * cols - 1);
    for c in 0..cols {
        out.push(Coord::new(top, c));
    }
    out.push(Coord::new(top + 1, cols - 1));
    // Zig-zag rows top+1 / top+2 over column pairs (cols-2, cols-3), ...
    let mut c = cols - 2;
    loop {
        out.push(Coord::new(top + 1, c));
        out.push(Coord::new(top + 2, c));
        out.push(Coord::new(top + 2, c - 1));
        out.push(Coord::new(top + 1, c - 1));
        if c == 1 {
            break;
        }
        c -= 2;
    }
    out
}

/// Replaces the edge `(top,0)-(top,1)` with a detour that covers rows
/// `top-2` and `top-1` completely.
fn splice_two_rows(cycle: &mut Vec<Coord>, top: usize, cols: usize) {
    let a = Coord::new(top, 0);
    let b = Coord::new(top, 1);
    let i = cycle
        .iter()
        .position(|&c| c == a)
        .expect("splice anchor (top,0) present in cycle");
    debug_assert_eq!(cycle[(i + 1) % cycle.len()], b, "splice invariant violated");
    let mut detour = Vec::with_capacity(2 * cols);
    detour.push(Coord::new(top - 1, 0));
    for c in 0..cols {
        detour.push(Coord::new(top - 2, c));
    }
    for c in (1..cols).rev() {
        detour.push(Coord::new(top - 1, c));
    }
    // Insert after position i (works even when the (a, b) pair wraps, since we
    // insert directly after a).
    let at = i + 1;
    cycle.splice(at..at, detour);
}

/// Checks that `cycle` is a Hamiltonian cycle of `mesh` over all nodes except
/// `excluded`: consecutive nodes (and last→first) are mesh neighbors, every
/// non-excluded node appears exactly once, and no excluded node appears.
pub fn is_hamiltonian_cycle(mesh: &Mesh, cycle: &[NodeId], excluded: &[NodeId]) -> bool {
    let expect = mesh.nodes() - excluded.len();
    if cycle.len() != expect || cycle.len() < 3 {
        return false;
    }
    let mut seen = vec![false; mesh.nodes()];
    for &n in cycle {
        if n.index() >= mesh.nodes() || seen[n.index()] || excluded.contains(&n) {
            return false;
        }
        seen[n.index()] = true;
    }
    cycle
        .iter()
        .zip(cycle.iter().cycle().skip(1))
        .all(|(&a, &b)| mesh.are_adjacent(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_meshes_have_cycles() {
        for (r, c) in [
            (2, 2),
            (2, 3),
            (3, 2),
            (4, 4),
            (8, 8),
            (5, 4),
            (4, 5),
            (2, 9),
            (9, 2),
            (6, 7),
        ] {
            let m = Mesh::new(r, c).unwrap();
            let cycle = hamiltonian_cycle(&m).unwrap();
            assert!(
                is_hamiltonian_cycle(&m, &cycle, &[]),
                "invalid cycle for {r}x{c}: {cycle:?}"
            );
        }
    }

    #[test]
    fn serpentine_path_visits_all_nodes_once() {
        for (r, c) in [(1, 1), (1, 7), (4, 1), (3, 3), (4, 6), (9, 9)] {
            let m = Mesh::new(r, c).unwrap();
            let p = serpentine_path(&m);
            assert_eq!(p.len(), m.nodes());
            let mut seen = vec![false; m.nodes()];
            for n in &p {
                assert!(!seen[n.index()]);
                seen[n.index()] = true;
            }
            for w in p.windows(2) {
                assert!(m.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn odd_meshes_reject_full_cycle() {
        let m = Mesh::square(3).unwrap();
        assert!(matches!(
            hamiltonian_cycle(&m),
            Err(TopologyError::NoHamiltonianCycle { .. })
        ));
    }

    #[test]
    fn one_dim_meshes_reject_cycle() {
        let m = Mesh::new(1, 6).unwrap();
        assert!(matches!(
            hamiltonian_cycle(&m),
            Err(TopologyError::MeshTooSmall { .. })
        ));
    }

    #[test]
    fn corner_excluded_cycles_are_valid() {
        for (r, c) in [
            (3, 3),
            (3, 5),
            (5, 3),
            (5, 5),
            (7, 9),
            (9, 9),
            (3, 9),
            (11, 5),
        ] {
            let m = Mesh::new(r, c).unwrap();
            let (cycle, ex) = corner_excluded_cycle(&m).unwrap();
            assert_eq!(ex, *m.corners().last().unwrap());
            assert!(
                is_hamiltonian_cycle(&m, &cycle, &[ex]),
                "invalid corner-excluded cycle for {r}x{c}"
            );
        }
    }

    #[test]
    fn corner_excluded_rejects_even() {
        let m = Mesh::new(3, 4).unwrap();
        assert!(matches!(
            corner_excluded_cycle(&m),
            Err(TopologyError::NotOddMesh { .. })
        ));
    }

    #[test]
    fn corner_excluded_matches_paper_example() {
        // Paper Fig 3 ring for 3x3 (1-based): 1,2,3,6,5,8,7,4 excluding 9.
        // Our construction is a valid cycle over the same node set; check the
        // set and the exclusion, not the specific rotation/orientation.
        let m = Mesh::square(3).unwrap();
        let (cycle, ex) = corner_excluded_cycle(&m).unwrap();
        assert_eq!(ex, NodeId(8));
        let mut set: Vec<_> = cycle.iter().map(|n| n.index()).collect();
        set.sort_unstable();
        assert_eq!(set, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn validator_rejects_bad_cycles() {
        let m = Mesh::square(4).unwrap();
        let mut cycle = hamiltonian_cycle(&m).unwrap();
        // Duplicate a node.
        cycle[3] = cycle[0];
        assert!(!is_hamiltonian_cycle(&m, &cycle, &[]));
        // Wrong length.
        let cycle = hamiltonian_cycle(&m).unwrap();
        assert!(!is_hamiltonian_cycle(&m, &cycle[..15], &[]));
        // Non-adjacent consecutive nodes.
        let bad: Vec<NodeId> = (0..16).map(NodeId).collect();
        assert!(!is_hamiltonian_cycle(&m, &bad, &[]));
    }
}
