//! Topology constructions on a fault-masked mesh.
//!
//! Every builder here sees the mesh through a [`FaultModel`]: dead chiplets
//! are not visited, and a channel is traversable only when *both* directed
//! links are usable (collectives push data both ways across each edge —
//! reduce-scatter one way, all-gather the other). When the surviving
//! topology cannot support the requested structure, the builders return
//! [`TopologyError::Infeasible`] instead of panicking or spinning.
//!
//! The Hamiltonian-cycle search is exact but budget-bounded: grid graphs are
//! friendly to a fewest-options-first (Warnsdorff) ordering, so realistic
//! fault counts resolve in well under the budget, while adversarial masks
//! fail fast with a typed error.

use crate::fault::FaultModel;
use crate::tree::Tree;
use crate::{hamiltonian, Mesh, NodeId, TopologyError};

/// Global step budget for the cycle search, across all candidate exclusion
/// sets. Each step is one DFS extension attempt.
const CYCLE_SEARCH_BUDGET: i64 = 2_000_000;

/// Cap on how many candidate exclusion sets the cycle search examines.
const MAX_EXCLUSION_CANDIDATES: usize = 4_000;

/// A Hamiltonian-style cycle over the fault-masked mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedCycle {
    /// The cycle, in visiting order; consecutive nodes (and last→first) are
    /// joined by usable links.
    pub order: Vec<NodeId>,
    /// Surviving chiplets that could not be placed on the cycle (bipartite
    /// color imbalance); each is usable-adjacent to at least one cycle
    /// member so its data can still be fed in and drained out.
    pub excluded: Vec<NodeId>,
}

/// The neighbors of `n` reachable over channels whose *both* directions are
/// usable, skipping dead chiplets.
pub fn usable_neighbors(mesh: &Mesh, faults: &FaultModel, n: NodeId) -> Vec<NodeId> {
    mesh.neighbors(n)
        .into_iter()
        .filter(|&nb| {
            !faults.node_failed(nb)
                && mesh
                    .link_between(n, nb)
                    .is_ok_and(|l| faults.link_usable(mesh, l))
                && mesh
                    .link_between(nb, n)
                    .is_ok_and(|l| faults.link_usable(mesh, l))
        })
        .collect()
}

/// True when every surviving chiplet can reach every other over usable
/// channels (vacuously true for zero or one survivor).
pub fn is_connected(mesh: &Mesh, faults: &FaultModel) -> bool {
    let survivors = faults.surviving_nodes(mesh);
    let Some(&start) = survivors.first() else {
        return true;
    };
    reachable_from(mesh, faults, start).len() == survivors.len()
}

fn reachable_from(mesh: &Mesh, faults: &FaultModel, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; mesh.nodes()];
    seen[start.index()] = true;
    let mut queue = vec![start];
    let mut order = vec![start];
    while let Some(n) = queue.pop() {
        for nb in usable_neighbors(mesh, faults, n) {
            if !seen[nb.index()] {
                seen[nb.index()] = true;
                queue.push(nb);
                order.push(nb);
            }
        }
    }
    order
}

/// Builds a BFS tree rooted at `root` spanning every surviving chiplet.
///
/// # Errors
///
/// Returns [`TopologyError::Infeasible`] when the root is dead or the
/// survivors are partitioned.
pub fn masked_tree(mesh: &Mesh, faults: &FaultModel, root: NodeId) -> Result<Tree, TopologyError> {
    mesh.check_node(root)?;
    if faults.node_failed(root) {
        return Err(TopologyError::Infeasible {
            reason: "tree root is a dead chiplet",
        });
    }
    let survivors = faults.surviving_nodes(mesh);
    let mut tree = Tree::new(root, mesh.nodes());
    let mut queue = std::collections::VecDeque::from([root]);
    let mut reached = 1usize;
    while let Some(n) = queue.pop_front() {
        for nb in usable_neighbors(mesh, faults, n) {
            if !tree.contains(nb) {
                tree.attach(nb, n);
                reached += 1;
                queue.push_back(nb);
            }
        }
    }
    if reached != survivors.len() {
        return Err(TopologyError::Infeasible {
            reason: "surviving chiplets are partitioned",
        });
    }
    Ok(tree)
}

/// Finds a cycle over the surviving chiplets using only usable channels.
///
/// On a healthy mesh this defers to the closed-form constructions
/// ([`hamiltonian::hamiltonian_cycle`] for even meshes, the corner-excluded
/// cycle for odd ones). Under faults it searches: bipartite color balance
/// dictates how many survivors must sit out, candidate exclusion sets are
/// tried smallest-first, and a budget-bounded DFS looks for the cycle.
///
/// # Errors
///
/// Returns [`TopologyError::Infeasible`] when no cycle exists within the
/// search budget, and propagates invalid fault records from
/// [`FaultModel::validate`].
pub fn masked_cycle(mesh: &Mesh, faults: &FaultModel) -> Result<MaskedCycle, TopologyError> {
    faults.validate(mesh)?;
    if faults.is_empty() && mesh.rows() >= 2 && mesh.cols() >= 2 {
        if let Ok(order) = hamiltonian::hamiltonian_cycle(mesh) {
            return Ok(MaskedCycle {
                order,
                excluded: Vec::new(),
            });
        }
        if let Ok((order, corner)) = hamiltonian::corner_excluded_cycle(mesh) {
            return Ok(MaskedCycle {
                order,
                excluded: vec![corner],
            });
        }
    }

    let survivors = faults.surviving_nodes(mesh);
    if survivors.is_empty() {
        return Err(TopologyError::Infeasible {
            reason: "no surviving chiplets",
        });
    }
    if survivors.len() == 1 {
        return Ok(MaskedCycle {
            order: survivors,
            excluded: Vec::new(),
        });
    }
    if !is_connected(mesh, faults) {
        return Err(TopologyError::Infeasible {
            reason: "surviving chiplets are partitioned",
        });
    }
    if survivors.len() == 2 {
        // Connectivity over usable channels implies direct adjacency here;
        // a two-node "cycle" uses the two directed links of one channel.
        return Ok(MaskedCycle {
            order: survivors,
            excluded: Vec::new(),
        });
    }

    let adj: Vec<Vec<NodeId>> = mesh
        .node_ids()
        .map(|n| {
            if faults.node_failed(n) {
                Vec::new()
            } else {
                usable_neighbors(mesh, faults, n)
            }
        })
        .collect();

    // Checkerboard coloring: a cycle alternates colors, so it carries equal
    // counts of each. The imbalance among survivors is the minimum number of
    // majority-color nodes that must sit the cycle out.
    let is_black = |n: NodeId| (mesh.coord(n).row + mesh.coord(n).col).is_multiple_of(2);
    let blacks = survivors.iter().filter(|&&n| is_black(n)).count();
    let whites = survivors.len() - blacks;
    let (maj_color_black, imbalance) = if blacks >= whites {
        (true, blacks - whites)
    } else {
        (false, whites - blacks)
    };

    // Majority-color survivors, easiest-to-spare (fewest usable neighbors)
    // first — mirroring the healthy odd-mesh construction, which spares a
    // degree-2 corner.
    let mut majority: Vec<NodeId> = survivors
        .iter()
        .copied()
        .filter(|&n| is_black(n) == maj_color_black)
        .collect();
    majority.sort_by_key(|&n| (adj[n.index()].len(), n.index()));
    let minority: Vec<NodeId> = survivors
        .iter()
        .copied()
        .filter(|&n| is_black(n) != maj_color_black)
        .collect();

    let mut budget = CYCLE_SEARCH_BUDGET;
    let mut candidates_tried = 0usize;

    // Exclusion sets of the minimum size, then minimum + one node of each
    // color (the next size that keeps the cycle's color balance).
    for extra in [0usize, 1] {
        let mut found: Option<MaskedCycle> = None;
        for_each_exclusion(
            &majority,
            &minority,
            imbalance + extra,
            extra,
            &mut |excluded| {
                if found.is_some() || candidates_tried >= MAX_EXCLUSION_CANDIDATES || budget <= 0 {
                    return;
                }
                candidates_tried += 1;
                if let Some(order) =
                    try_cycle_with_exclusions(mesh, &survivors, &adj, excluded, &mut budget)
                {
                    found = Some(MaskedCycle {
                        order,
                        excluded: excluded.to_vec(),
                    });
                }
            },
        );
        if let Some(cycle) = found {
            return Ok(cycle);
        }
        if budget <= 0 {
            return Err(TopologyError::Infeasible {
                reason: "cycle search budget exhausted on the masked topology",
            });
        }
    }
    Err(TopologyError::Infeasible {
        reason: "no cycle exists over the surviving chiplets",
    })
}

/// Enumerates exclusion sets: `maj_take` majority-color nodes plus
/// `min_take` minority-color nodes, invoking `f` on each candidate.
fn for_each_exclusion(
    majority: &[NodeId],
    minority: &[NodeId],
    maj_take: usize,
    min_take: usize,
    f: &mut dyn FnMut(&[NodeId]),
) {
    if maj_take > majority.len() || min_take > minority.len() {
        return;
    }
    let mut maj_combo = Vec::with_capacity(maj_take);
    combos(majority, maj_take, &mut maj_combo, 0, &mut |maj_set| {
        let mut min_combo = Vec::with_capacity(min_take);
        combos(minority, min_take, &mut min_combo, 0, &mut |min_set| {
            let mut excluded = maj_set.to_vec();
            excluded.extend_from_slice(min_set);
            f(&excluded);
        });
    });
}

fn combos(
    pool: &[NodeId],
    take: usize,
    acc: &mut Vec<NodeId>,
    from: usize,
    f: &mut dyn FnMut(&[NodeId]),
) {
    if acc.len() == take {
        f(acc);
        return;
    }
    let need = take - acc.len();
    for i in from..pool.len() {
        if pool.len() - i < need {
            break;
        }
        acc.push(pool[i]);
        combos(pool, take, acc, i + 1, f);
        acc.pop();
    }
}

/// Attempts a Hamiltonian cycle over the survivors minus `excluded`.
fn try_cycle_with_exclusions(
    mesh: &Mesh,
    survivors: &[NodeId],
    adj: &[Vec<NodeId>],
    excluded: &[NodeId],
    budget: &mut i64,
) -> Option<Vec<NodeId>> {
    let mut in_cycle = vec![false; mesh.nodes()];
    for &n in survivors {
        in_cycle[n.index()] = true;
    }
    for &e in excluded {
        in_cycle[e.index()] = false;
        // Every spared node must stay feedable from the cycle.
        if !adj[e.index()]
            .iter()
            .any(|nb| in_cycle[nb.index()] && !excluded.contains(nb))
        {
            return None;
        }
    }
    let members: Vec<NodeId> = survivors
        .iter()
        .copied()
        .filter(|n| in_cycle[n.index()])
        .collect();
    if members.len() < 4 || !members.len().is_multiple_of(2) {
        return None;
    }
    // Cycle members need two distinct cycle neighbors each.
    if members.iter().any(|&n| {
        adj[n.index()]
            .iter()
            .filter(|nb| in_cycle[nb.index()])
            .count()
            < 2
    }) {
        return None;
    }

    let start = members[0];
    let mut visited = vec![false; mesh.nodes()];
    visited[start.index()] = true;
    let mut path = vec![start];
    if extend_cycle(
        &mut path,
        &mut visited,
        members.len(),
        adj,
        &in_cycle,
        start,
        budget,
    ) {
        Some(path)
    } else {
        None
    }
}

fn extend_cycle(
    path: &mut Vec<NodeId>,
    visited: &mut [bool],
    target: usize,
    adj: &[Vec<NodeId>],
    in_cycle: &[bool],
    start: NodeId,
    budget: &mut i64,
) -> bool {
    if *budget <= 0 {
        return false;
    }
    *budget -= 1;
    let cur = *path.last().expect("path is never empty");
    if path.len() == target {
        return adj[cur.index()].contains(&start);
    }
    let mut cands: Vec<NodeId> = adj[cur.index()]
        .iter()
        .copied()
        .filter(|nb| in_cycle[nb.index()] && !visited[nb.index()])
        .collect();
    // Fewest-options-first keeps the DFS from stranding tight nodes.
    cands.sort_by_key(|&c| {
        adj[c.index()]
            .iter()
            .filter(|nb| in_cycle[nb.index()] && !visited[nb.index()])
            .count()
    });
    for c in cands {
        visited[c.index()] = true;
        path.push(c);
        if extend_cycle(path, visited, target, adj, in_cycle, start, budget) {
            return true;
        }
        path.pop();
        visited[c.index()] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    fn cycle_uses_only_usable_links(mesh: &Mesh, faults: &FaultModel, order: &[NodeId]) -> bool {
        (0..order.len()).all(|i| {
            let a = order[i];
            let b = order[(i + 1) % order.len()];
            mesh.link_between(a, b)
                .is_ok_and(|l| faults.link_usable(mesh, l))
        })
    }

    #[test]
    fn healthy_even_mesh_uses_the_closed_form_cycle() {
        let mesh = Mesh::square(4).unwrap();
        let cycle = masked_cycle(&mesh, &FaultModel::new()).unwrap();
        assert_eq!(cycle.order.len(), 16);
        assert!(cycle.excluded.is_empty());
        assert!(hamiltonian::is_hamiltonian_cycle(&mesh, &cycle.order, &[]));
    }

    #[test]
    fn healthy_odd_mesh_spares_the_corner() {
        let mesh = Mesh::square(5).unwrap();
        let cycle = masked_cycle(&mesh, &FaultModel::new()).unwrap();
        assert_eq!(cycle.order.len(), 24);
        assert_eq!(cycle.excluded.len(), 1);
    }

    #[test]
    fn cycle_avoids_a_failed_interior_channel() {
        let mesh = Mesh::square(4).unwrap();
        let mut faults = FaultModel::new();
        faults
            .fail_link_between(
                &mesh,
                mesh.node_at(Coord::new(1, 1)),
                mesh.node_at(Coord::new(1, 2)),
            )
            .unwrap();
        let cycle = masked_cycle(&mesh, &faults).unwrap();
        assert_eq!(cycle.order.len(), 16, "all nodes survive");
        assert!(cycle.excluded.is_empty());
        assert!(cycle_uses_only_usable_links(&mesh, &faults, &cycle.order));
    }

    #[test]
    fn cycle_routes_around_a_dead_majority_color_chiplet() {
        // The 5x5 center is majority-colored; its death rebalances the
        // checkerboard, so all 24 survivors fit on the cycle.
        let mesh = Mesh::square(5).unwrap();
        let mut faults = FaultModel::new();
        faults.fail_node(mesh.node_at(Coord::new(2, 2)));
        let cycle = masked_cycle(&mesh, &faults).unwrap();
        assert_eq!(cycle.order.len(), 24);
        assert!(cycle.excluded.is_empty());
        assert!(cycle_uses_only_usable_links(&mesh, &faults, &cycle.order));
    }

    #[test]
    fn cycle_spares_two_nodes_after_a_minority_color_death() {
        // Killing a minority-color chiplet on a 5x5 widens the imbalance to
        // two, so two majority-color survivors must sit out — and stay
        // feedable from the cycle.
        let mesh = Mesh::square(5).unwrap();
        let mut faults = FaultModel::new();
        faults.fail_node(mesh.node_at(Coord::new(2, 1)));
        let cycle = masked_cycle(&mesh, &faults).unwrap();
        assert_eq!(cycle.order.len(), 22);
        assert_eq!(cycle.excluded.len(), 2);
        assert!(cycle_uses_only_usable_links(&mesh, &faults, &cycle.order));
        for &e in &cycle.excluded {
            assert!(usable_neighbors(&mesh, &faults, e)
                .iter()
                .any(|nb| cycle.order.contains(nb)));
        }
    }

    #[test]
    fn partition_is_a_typed_infeasible_error() {
        let mesh = Mesh::square(3).unwrap();
        let corner = mesh.node_at(Coord::new(0, 0));
        let mut faults = FaultModel::new();
        faults
            .fail_link_between(&mesh, corner, mesh.node_at(Coord::new(0, 1)))
            .unwrap();
        faults
            .fail_link_between(&mesh, corner, mesh.node_at(Coord::new(1, 0)))
            .unwrap();
        assert!(!is_connected(&mesh, &faults));
        let err = masked_cycle(&mesh, &faults).unwrap_err();
        assert!(matches!(err, TopologyError::Infeasible { .. }), "{err}");
        let err = masked_tree(&mesh, &faults, mesh.node_at(Coord::new(1, 1))).unwrap_err();
        assert!(matches!(err, TopologyError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn masked_tree_spans_exactly_the_survivors() {
        let mesh = Mesh::square(5).unwrap();
        let mut faults = FaultModel::new();
        faults.fail_node(mesh.node_at(Coord::new(2, 2)));
        faults
            .fail_link_between(
                &mesh,
                mesh.node_at(Coord::new(0, 1)),
                mesh.node_at(Coord::new(0, 2)),
            )
            .unwrap();
        let root = mesh.node_at(Coord::new(0, 0));
        let tree = masked_tree(&mesh, &faults, root).unwrap();
        assert_eq!(tree.len(), 24);
        assert!(!tree.contains(mesh.node_at(Coord::new(2, 2))));
        for &n in tree.members() {
            if let Some(p) = tree.parent(n) {
                let l = mesh.link_between(p, n).unwrap();
                assert!(faults.link_usable(&mesh, l));
            }
        }
    }

    #[test]
    fn dead_root_is_infeasible() {
        let mesh = Mesh::square(3).unwrap();
        let mut faults = FaultModel::new();
        let root = mesh.node_at(Coord::new(1, 1));
        faults.fail_node(root);
        let err = masked_tree(&mesh, &faults, root).unwrap_err();
        assert!(matches!(err, TopologyError::Infeasible { .. }));
    }
}
