use std::error::Error;
use std::fmt;

/// Errors produced when constructing or querying mesh topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A mesh dimension was zero.
    EmptyMesh,
    /// The requested construction needs a larger mesh.
    ///
    /// Carries the minimum supported `(rows, cols)` and the actual ones.
    MeshTooSmall {
        /// Minimum supported dimensions for the operation.
        min: (usize, usize),
        /// The dimensions that were provided.
        got: (usize, usize),
    },
    /// A Hamiltonian cycle over all nodes requires an even-sized mesh
    /// (at least one even dimension); see paper §III-B.
    NoHamiltonianCycle {
        /// The odd dimensions that rule out a full cycle.
        rows: usize,
        /// Columns of the offending mesh.
        cols: usize,
    },
    /// The corner-excluded cycle construction requires both dimensions odd.
    NotOddMesh {
        /// Rows of the offending mesh.
        rows: usize,
        /// Columns of the offending mesh.
        cols: usize,
    },
    /// The mesh would exceed the stack's dense index spaces: `nodes * 4`
    /// link ids and the collectives' `u32` op ids must stay representable.
    MeshTooLarge {
        /// Rows of the offending mesh.
        rows: usize,
        /// Columns of the offending mesh.
        cols: usize,
        /// Maximum supported chiplet count.
        max_nodes: usize,
    },
    /// A node id was out of range for the mesh.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// Two nodes are not physical neighbors but a single link was requested.
    NotAdjacent {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
    },
    /// The requested construction is impossible on the fault-masked
    /// topology (e.g. the surviving nodes are partitioned, or no cycle
    /// exists among them).
    Infeasible {
        /// Human-readable explanation of why no construction exists.
        reason: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyMesh => write!(f, "mesh dimensions must be non-zero"),
            TopologyError::MeshTooSmall { min, got } => write!(
                f,
                "mesh {}x{} is too small; need at least {}x{}",
                got.0, got.1, min.0, min.1
            ),
            TopologyError::NoHamiltonianCycle { rows, cols } => write!(
                f,
                "no hamiltonian cycle exists in an odd-sized {rows}x{cols} mesh"
            ),
            TopologyError::NotOddMesh { rows, cols } => write!(
                f,
                "corner-excluded cycle requires an odd-sized mesh, got {rows}x{cols}"
            ),
            TopologyError::MeshTooLarge {
                rows,
                cols,
                max_nodes,
            } => write!(
                f,
                "mesh {rows}x{cols} exceeds the supported {max_nodes} chiplets"
            ),
            TopologyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for mesh with {nodes} nodes")
            }
            TopologyError::NotAdjacent { src, dst } => {
                write!(f, "nodes {src} and {dst} are not mesh neighbors")
            }
            TopologyError::Infeasible { reason } => {
                write!(f, "infeasible on the fault-masked topology: {reason}")
            }
        }
    }
}

impl Error for TopologyError {}
