//! Two-level hierarchical fabric: a board of MCM packages.
//!
//! Scale-out MCM systems tile packages on a board: each package is a
//! `chip_rows x chip_cols` chiplet mesh with fast interposer links, and
//! neighboring packages connect through board-level links that are slower
//! by a constant factor (organic substrate or off-package SerDes vs.
//! silicon interposer).
//!
//! A [`Hierarchy`] models this *without* introducing a new topology type
//! downstream: it flattens the package grid into one global [`Mesh`]
//! (packages are edge-stitched, so the union of interposer and board links
//! *is* a plain 2D mesh) and expresses the bandwidth asymmetry as link
//! degradation in the existing [`FaultModel`]. Every consumer — schedule
//! generation, the static analyzer's bounds, the NoC engines, fault
//! audits — therefore works on a hierarchy unchanged.
//!
//! # Example
//!
//! ```
//! use meshcoll_topo::Hierarchy;
//! // A 2x2 board of 4x4-chiplet packages with board links at 1/4 the
//! // interposer bandwidth: an 8x8 global mesh, 64 chiplets.
//! let h = Hierarchy::new(2, 2, 4, 4, 0.25)?;
//! assert_eq!(h.fabric().nodes(), 64);
//! let faults = h.fault_model()?;
//! let slow = h.boundary_links().next().unwrap();
//! assert_eq!(faults.degradation(slow), 0.25);
//! # Ok::<(), meshcoll_topo::TopologyError>(())
//! ```

use crate::{Direction, FaultModel, LinkId, Mesh, NodeId, TopologyError};

/// A two-level fabric: a `pkg_rows x pkg_cols` board of packages, each a
/// `chip_rows x chip_cols` chiplet mesh, flattened into one global mesh
/// with degraded package-boundary links.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    pkg_rows: usize,
    pkg_cols: usize,
    chip_rows: usize,
    chip_cols: usize,
    /// Board-link bandwidth as a fraction of interposer-link bandwidth.
    board_fraction: f64,
    fabric: Mesh,
}

impl Hierarchy {
    /// Creates a board of `pkg_rows x pkg_cols` packages, each a
    /// `chip_rows x chip_cols` chiplet mesh, with package-boundary (board)
    /// links running at `board_fraction` of the interposer bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyMesh`] if any dimension is zero,
    /// [`TopologyError::MeshTooLarge`] if the flattened global mesh would
    /// overflow the stack's dense index spaces, and
    /// [`TopologyError::Infeasible`] if `board_fraction` is not in `(0, 1]`.
    pub fn new(
        pkg_rows: usize,
        pkg_cols: usize,
        chip_rows: usize,
        chip_cols: usize,
        board_fraction: f64,
    ) -> Result<Self, TopologyError> {
        if pkg_rows == 0 || pkg_cols == 0 || chip_rows == 0 || chip_cols == 0 {
            return Err(TopologyError::EmptyMesh);
        }
        if !(board_fraction > 0.0 && board_fraction <= 1.0) {
            return Err(TopologyError::Infeasible {
                reason: "board bandwidth fraction must be in (0, 1]",
            });
        }
        let rows = pkg_rows
            .checked_mul(chip_rows)
            .ok_or(TopologyError::EmptyMesh)?;
        let cols = pkg_cols
            .checked_mul(chip_cols)
            .ok_or(TopologyError::EmptyMesh)?;
        let fabric = Mesh::new(rows, cols)?;
        Ok(Hierarchy {
            pkg_rows,
            pkg_cols,
            chip_rows,
            chip_cols,
            board_fraction,
            fabric,
        })
    }

    /// The flattened global mesh: `(pkg_rows * chip_rows) x (pkg_cols *
    /// chip_cols)` chiplets. Feed this to schedule generation, the
    /// analyzer, and the simulators exactly like a flat mesh.
    pub fn fabric(&self) -> &Mesh {
        &self.fabric
    }

    /// Number of packages on the board.
    pub fn packages(&self) -> usize {
        self.pkg_rows * self.pkg_cols
    }

    /// Chiplets per package.
    pub fn nodes_per_package(&self) -> usize {
        self.chip_rows * self.chip_cols
    }

    /// Board-link bandwidth as a fraction of interposer-link bandwidth.
    pub fn board_fraction(&self) -> f64 {
        self.board_fraction
    }

    /// The `(package_row, package_col)` containing a chiplet of the fabric.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range (as in [`Mesh::coord`]).
    pub fn package_of(&self, n: NodeId) -> (usize, usize) {
        let c = self.fabric.coord(n);
        (c.row / self.chip_rows, c.col / self.chip_cols)
    }

    /// True when the directed link crosses a package boundary (i.e. is a
    /// board-level link).
    ///
    /// # Panics
    ///
    /// Panics if the link id is a boundary slot with no physical link.
    pub fn is_boundary_link(&self, l: LinkId) -> bool {
        let (src, dst) = self.fabric.link_endpoints(l);
        self.package_of(src) != self.package_of(dst)
    }

    /// All directed board-level links, in fabric link order.
    pub fn boundary_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.fabric
            .links()
            .filter(|&(src, dst, _)| self.package_of(src) != self.package_of(dst))
            .map(|(_, _, l)| l)
    }

    /// Records the board-link bandwidth asymmetry into an existing fault
    /// model: every package-boundary channel is degraded to
    /// [`Hierarchy::board_fraction`] of nominal (both directions). A
    /// fraction of exactly `1.0` records nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from link lookup (cannot happen for a
    /// well-formed hierarchy).
    pub fn apply_to(&self, faults: &mut FaultModel) -> Result<(), TopologyError> {
        if self.board_fraction == 1.0 {
            return Ok(());
        }
        // Degrade each physical channel once, walking the eastward and
        // southward package seams.
        for pr in 1..self.pkg_rows {
            let row = pr * self.chip_rows;
            for l in self.fabric.row_cut_links(row, true) {
                let (a, b) = self.fabric.link_endpoints(l);
                faults.degrade_link_between(&self.fabric, a, b, self.board_fraction)?;
            }
        }
        for pc in 1..self.pkg_cols {
            let col = pc * self.chip_cols;
            for l in self.fabric.column_cut_links(col, true) {
                let (a, b) = self.fabric.link_endpoints(l);
                faults.degrade_link_between(&self.fabric, a, b, self.board_fraction)?;
            }
        }
        Ok(())
    }

    /// A fresh fault model carrying only this hierarchy's board-link
    /// degradation. Combine with real faults via [`Hierarchy::apply_to`].
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from link lookup (cannot happen for a
    /// well-formed hierarchy).
    pub fn fault_model(&self) -> Result<FaultModel, TopologyError> {
        let mut f = FaultModel::new();
        self.apply_to(&mut f)?;
        Ok(f)
    }

    /// Number of directed board-level links:
    /// `2 * (seams_h * cols + seams_v * rows)` where seams are the package
    /// boundaries in each dimension.
    pub fn boundary_link_count(&self) -> usize {
        let horizontal = (self.pkg_rows - 1) * self.fabric.cols();
        let vertical = (self.pkg_cols - 1) * self.fabric.rows();
        2 * (horizontal + vertical)
    }
}

impl std::fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} board of {}x{} packages (board links at {:.0}%)",
            self.pkg_rows,
            self.pkg_cols,
            self.chip_rows,
            self.chip_cols,
            self.board_fraction * 100.0
        )
    }
}

/// Sanity check used by tests: a link is boundary iff its direction steps
/// across a package seam.
#[allow(dead_code)]
fn crosses_seam(h: &Hierarchy, src: NodeId, d: Direction) -> bool {
    let c = h.fabric().coord(src);
    match d {
        Direction::East => (c.col + 1).is_multiple_of(h.chip_cols),
        Direction::West => c.col.is_multiple_of(h.chip_cols),
        Direction::North => c.row.is_multiple_of(h.chip_rows),
        Direction::South => (c.row + 1).is_multiple_of(h.chip_rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert_eq!(
            Hierarchy::new(0, 2, 4, 4, 0.5),
            Err(TopologyError::EmptyMesh)
        );
        assert_eq!(
            Hierarchy::new(2, 2, 0, 4, 0.5),
            Err(TopologyError::EmptyMesh)
        );
        assert!(Hierarchy::new(2, 2, 4, 4, 0.0).is_err());
        assert!(Hierarchy::new(2, 2, 4, 4, 1.5).is_err());
        assert!(Hierarchy::new(2, 2, 4, 4, f64::NAN).is_err());
        assert!(Hierarchy::new(2, 2, 4, 4, 1.0).is_ok());
    }

    #[test]
    fn fabric_is_the_flattened_mesh() {
        let h = Hierarchy::new(2, 3, 4, 5, 0.5).unwrap();
        assert_eq!(h.fabric().rows(), 8);
        assert_eq!(h.fabric().cols(), 15);
        assert_eq!(h.packages(), 6);
        assert_eq!(h.nodes_per_package(), 20);
        assert!(!h.fabric().is_torus());
    }

    #[test]
    fn package_of_partitions_the_fabric() {
        let h = Hierarchy::new(2, 2, 3, 3, 0.5).unwrap();
        let mut sizes = std::collections::HashMap::new();
        for n in h.fabric().node_ids() {
            *sizes.entry(h.package_of(n)).or_insert(0usize) += 1;
        }
        assert_eq!(sizes.len(), h.packages());
        assert!(sizes.values().all(|&s| s == h.nodes_per_package()));
    }

    #[test]
    fn boundary_links_match_seam_geometry() {
        let h = Hierarchy::new(2, 3, 3, 2, 0.5).unwrap();
        let found: Vec<LinkId> = h.boundary_links().collect();
        assert_eq!(found.len(), h.boundary_link_count());
        for (src, _, l) in h.fabric().links() {
            let d = Direction::ALL[l.index() % 4];
            assert_eq!(
                h.is_boundary_link(l),
                crosses_seam(&h, src, d),
                "link {l} from {src} dir {d}"
            );
        }
    }

    #[test]
    fn fault_model_degrades_exactly_the_boundary_links() {
        let h = Hierarchy::new(2, 2, 4, 4, 0.25).unwrap();
        let faults = h.fault_model().unwrap();
        for (_, _, l) in h.fabric().links() {
            let want = if h.is_boundary_link(l) { 0.25 } else { 1.0 };
            assert_eq!(faults.degradation(l), want, "link {l}");
            assert!(faults.link_usable(h.fabric(), l), "degraded is not dead");
        }
        assert_eq!(faults.failed_node_count(), 0);
        assert_eq!(faults.failed_link_count(), 0);
    }

    #[test]
    fn full_bandwidth_board_records_no_faults() {
        let h = Hierarchy::new(2, 2, 4, 4, 1.0).unwrap();
        assert!(h.fault_model().unwrap().is_empty());
    }

    #[test]
    fn apply_to_composes_with_real_faults() {
        let h = Hierarchy::new(2, 2, 2, 2, 0.5).unwrap();
        let mut faults = FaultModel::new();
        faults.fail_node(NodeId(0));
        h.apply_to(&mut faults).unwrap();
        assert!(faults.node_failed(NodeId(0)));
        let slow = h.boundary_links().next().unwrap();
        assert_eq!(faults.degradation(slow), 0.5);
    }

    #[test]
    fn single_package_board_has_no_boundaries() {
        let h = Hierarchy::new(1, 1, 5, 5, 0.25).unwrap();
        assert_eq!(h.boundary_link_count(), 0);
        assert_eq!(h.boundary_links().count(), 0);
        assert!(h.fault_model().unwrap().is_empty());
    }
}
