//! Fault model for degraded MCM packages.
//!
//! Interposer links and chiplets fail or degrade in the field. A
//! [`FaultModel`] records which directed links are dead, which chiplets are
//! dead, which links run below nominal bandwidth, and (optionally) transient
//! link flaps generated from a deterministic seed. The model is consumed by
//! the masked-topology constructions in [`crate::masked`], by the collective
//! schedule lint/repair passes, and by the NoC engines.

use std::collections::{BTreeMap, BTreeSet};

use crate::{LinkId, Mesh, NodeId, TopologyError};

/// A transient outage window on one directed link: the link accepts no new
/// transmissions in `[down_ns, up_ns)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFlap {
    /// The flapping directed link.
    pub link: LinkId,
    /// Start of the outage window (ns).
    pub down_ns: f64,
    /// End of the outage window (ns); the link is usable again from here.
    pub up_ns: f64,
}

/// The set of permanent and transient faults afflicting a mesh.
///
/// Node and link ids are stored as raw indices so the model is independent
/// of any particular [`Mesh`] instance; [`FaultModel::validate`] checks the
/// ids against a concrete mesh. Link failures are directed — use
/// [`FaultModel::fail_link_between`] to kill both directions of a physical
/// channel, which is what a broken interposer trace means in practice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultModel {
    failed_nodes: BTreeSet<usize>,
    failed_links: BTreeSet<usize>,
    /// Fraction of nominal bandwidth remaining, per degraded directed link.
    degraded: BTreeMap<usize, f64>,
    flaps: Vec<LinkFlap>,
}

impl FaultModel {
    /// An empty fault set (a healthy package).
    pub fn new() -> Self {
        FaultModel::default()
    }

    /// True when no fault of any kind is recorded.
    pub fn is_empty(&self) -> bool {
        self.failed_nodes.is_empty()
            && self.failed_links.is_empty()
            && self.degraded.is_empty()
            && self.flaps.is_empty()
    }

    /// Marks a chiplet as dead. All its links become unusable implicitly.
    pub fn fail_node(&mut self, node: NodeId) {
        self.failed_nodes.insert(node.index());
    }

    /// Marks a single directed link as dead.
    pub fn fail_link(&mut self, link: LinkId) {
        self.failed_links.insert(link.index());
    }

    /// Kills both directions of the physical channel between two neighbor
    /// chiplets.
    ///
    /// # Errors
    ///
    /// Fails when `a` and `b` are out of range or not neighbors on `mesh`.
    pub fn fail_link_between(
        &mut self,
        mesh: &Mesh,
        a: NodeId,
        b: NodeId,
    ) -> Result<(), TopologyError> {
        self.failed_links.insert(mesh.link_between(a, b)?.index());
        self.failed_links.insert(mesh.link_between(b, a)?.index());
        Ok(())
    }

    /// Degrades one directed link to `fraction` of its nominal bandwidth.
    ///
    /// `fraction` is clamped to `(0, 1]`; use [`FaultModel::fail_link`] for a
    /// dead link.
    pub fn degrade_link(&mut self, link: LinkId, fraction: f64) {
        let f = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        self.degraded.insert(link.index(), f);
    }

    /// Degrades both directions of the channel between two neighbor chiplets.
    ///
    /// # Errors
    ///
    /// Fails when `a` and `b` are out of range or not neighbors on `mesh`.
    pub fn degrade_link_between(
        &mut self,
        mesh: &Mesh,
        a: NodeId,
        b: NodeId,
        fraction: f64,
    ) -> Result<(), TopologyError> {
        self.degrade_link(mesh.link_between(a, b)?, fraction);
        self.degrade_link(mesh.link_between(b, a)?, fraction);
        Ok(())
    }

    /// Records a transient outage window on one directed link.
    pub fn add_flap(&mut self, flap: LinkFlap) {
        self.flaps.push(flap);
    }

    /// Adds `count` transient outage windows on random live links, generated
    /// deterministically from `seed` (same seed, same mesh → same flaps).
    /// Each outage starts uniformly in `[0, horizon_ns)` and lasts `down_ns`.
    pub fn add_random_flaps(
        &mut self,
        mesh: &Mesh,
        count: usize,
        horizon_ns: f64,
        down_ns: f64,
        seed: u64,
    ) {
        let candidates: Vec<LinkId> = mesh
            .links()
            .filter_map(|(_, _, l)| self.link_usable(mesh, l).then_some(l))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        for _ in 0..count {
            let link = candidates[(xorshift(&mut state) as usize) % candidates.len()];
            let start = (xorshift(&mut state) as f64 / u64::MAX as f64) * horizon_ns;
            self.flaps.push(LinkFlap {
                link,
                down_ns: start,
                up_ns: start + down_ns,
            });
        }
    }

    /// True if the chiplet is dead.
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes.contains(&node.index())
    }

    /// True if the directed link itself is marked dead (endpoint failures
    /// are not consulted; see [`FaultModel::link_usable`]).
    pub fn link_failed(&self, link: LinkId) -> bool {
        self.failed_links.contains(&link.index())
    }

    /// True if traffic may use the directed link: the link is not dead and
    /// neither of its endpoints is a dead chiplet.
    ///
    /// `link` must be a real link of `mesh` (a boundary slot id panics, as
    /// in [`Mesh::link_endpoints`]).
    pub fn link_usable(&self, mesh: &Mesh, link: LinkId) -> bool {
        if self.link_failed(link) {
            return false;
        }
        let (src, dst) = mesh.link_endpoints(link);
        !self.node_failed(src) && !self.node_failed(dst)
    }

    /// Remaining bandwidth fraction of a directed link (`1.0` if healthy).
    pub fn degradation(&self, link: LinkId) -> f64 {
        self.degraded.get(&link.index()).copied().unwrap_or(1.0)
    }

    /// Earliest time `>= t_ns` at which the link is outside every transient
    /// outage window.
    pub fn available_at(&self, link: LinkId, t_ns: f64) -> f64 {
        let mut t = t_ns;
        let mut moved = true;
        while moved {
            moved = false;
            for f in &self.flaps {
                if f.link == link && t >= f.down_ns && t < f.up_ns {
                    t = f.up_ns;
                    moved = true;
                }
            }
        }
        t
    }

    /// Number of dead chiplets.
    pub fn failed_node_count(&self) -> usize {
        self.failed_nodes.len()
    }

    /// Number of dead directed links.
    pub fn failed_link_count(&self) -> usize {
        self.failed_links.len()
    }

    /// The transient outage windows.
    pub fn flaps(&self) -> &[LinkFlap] {
        &self.flaps
    }

    /// The chiplets of `mesh` that are alive, in id order.
    pub fn surviving_nodes(&self, mesh: &Mesh) -> Vec<NodeId> {
        mesh.node_ids().filter(|&n| !self.node_failed(n)).collect()
    }

    /// Checks that every recorded id is in range for `mesh`.
    ///
    /// # Errors
    ///
    /// Fails when a recorded node or link id does not exist on `mesh`.
    pub fn validate(&self, mesh: &Mesh) -> Result<(), TopologyError> {
        for &n in &self.failed_nodes {
            mesh.check_node(NodeId(n))?;
        }
        for &l in self.failed_links.iter().chain(self.degraded.keys()) {
            if l >= mesh.link_id_space() {
                return Err(TopologyError::NodeOutOfRange {
                    node: l,
                    nodes: mesh.link_id_space(),
                });
            }
        }
        Ok(())
    }
}

/// xorshift64* step — the same deterministic generator the schedule verifier
/// uses for seeded execution orders.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    #[test]
    fn channel_failure_kills_both_directions() {
        let mesh = Mesh::square(3).unwrap();
        let a = mesh.node_at(Coord::new(1, 1));
        let b = mesh.node_at(Coord::new(1, 2));
        let mut faults = FaultModel::new();
        faults.fail_link_between(&mesh, a, b).unwrap();
        assert!(faults.link_failed(mesh.link_between(a, b).unwrap()));
        assert!(faults.link_failed(mesh.link_between(b, a).unwrap()));
        assert_eq!(faults.failed_link_count(), 2);
    }

    #[test]
    fn node_failure_makes_adjacent_links_unusable() {
        let mesh = Mesh::square(3).unwrap();
        let center = mesh.node_at(Coord::new(1, 1));
        let east = mesh.node_at(Coord::new(1, 2));
        let mut faults = FaultModel::new();
        faults.fail_node(center);
        let l = mesh.link_between(east, center).unwrap();
        assert!(!faults.link_failed(l), "link itself is intact");
        assert!(
            !faults.link_usable(&mesh, l),
            "but a dead endpoint blocks it"
        );
        assert_eq!(faults.surviving_nodes(&mesh).len(), 8);
    }

    #[test]
    fn degradation_defaults_to_full_bandwidth() {
        let mesh = Mesh::square(3).unwrap();
        let (_, _, link) = mesh.links().next().unwrap();
        let mut faults = FaultModel::new();
        assert_eq!(faults.degradation(link), 1.0);
        faults.degrade_link(link, 0.5);
        assert_eq!(faults.degradation(link), 0.5);
        assert!(faults.link_usable(&mesh, link), "degraded is not dead");
    }

    #[test]
    fn flap_windows_defer_availability() {
        let mut faults = FaultModel::new();
        let link = LinkId(7);
        faults.add_flap(LinkFlap {
            link,
            down_ns: 100.0,
            up_ns: 250.0,
        });
        faults.add_flap(LinkFlap {
            link,
            down_ns: 250.0,
            up_ns: 300.0,
        });
        assert_eq!(faults.available_at(link, 50.0), 50.0);
        // Chained windows are skipped in one query.
        assert_eq!(faults.available_at(link, 120.0), 300.0);
        assert_eq!(faults.available_at(LinkId(8), 120.0), 120.0);
    }

    #[test]
    fn random_flaps_are_deterministic_per_seed() {
        let mesh = Mesh::square(4).unwrap();
        let mut a = FaultModel::new();
        let mut b = FaultModel::new();
        a.add_random_flaps(&mesh, 5, 10_000.0, 500.0, 42);
        b.add_random_flaps(&mesh, 5, 10_000.0, 500.0, 42);
        assert_eq!(a, b);
        let mut c = FaultModel::new();
        c.add_random_flaps(&mesh, 5, 10_000.0, 500.0, 43);
        assert_ne!(a, c);
        assert_eq!(a.flaps().len(), 5);
    }

    #[test]
    fn validate_rejects_out_of_range_ids() {
        let mesh = Mesh::square(3).unwrap();
        let mut faults = FaultModel::new();
        faults.fail_node(NodeId(99));
        assert!(faults.validate(&mesh).is_err());
    }
}
