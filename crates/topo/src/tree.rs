//! Rooted spanning trees over mesh nodes.
//!
//! The tree-based AllReduce algorithms (DBTree, MultiTree, TTO) are all
//! expressed as sets of rooted trees: ReduceScatter flows child→parent along
//! tree edges, AllGather flows parent→child along the reversed edges. [`Tree`]
//! stores the parent relation plus enough derived structure (children lists,
//! depth, traversal orders) for schedule generation.

use std::fmt;

use crate::{Mesh, NodeId};

/// A rooted tree over a subset of mesh nodes.
///
/// # Example
///
/// ```
/// use meshcoll_topo::{Tree, NodeId};
/// let mut t = Tree::new(NodeId(0), 4);
/// t.attach(NodeId(1), NodeId(0));
/// t.attach(NodeId(2), NodeId(0));
/// t.attach(NodeId(3), NodeId(1));
/// assert_eq!(t.height(), 2);
/// assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
/// assert_eq!(t.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    root: NodeId,
    /// `parent[n] == Some(p)` when node `n` is in the tree with parent `p`;
    /// the root maps to `Some(root)` internally and is special-cased.
    parent: Vec<Option<NodeId>>,
    members: Vec<NodeId>,
}

impl Tree {
    /// Creates a tree containing only `root`, sized for a mesh of
    /// `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn new(root: NodeId, node_count: usize) -> Self {
        assert!(root.index() < node_count, "root {root} out of range");
        let mut parent = vec![None; node_count];
        parent[root.index()] = Some(root);
        Tree {
            root,
            parent,
            members: vec![root],
        }
    }

    /// The tree's root.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes currently in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the tree holds only its root.
    pub fn is_empty(&self) -> bool {
        self.members.len() == 1
    }

    /// Whether `n` is in the tree.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.parent.get(n.index()).is_some_and(Option::is_some)
    }

    /// The parent of `n`, or `None` if `n` is the root or not in the tree.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        if n == self.root {
            return None;
        }
        self.parent.get(n.index()).copied().flatten()
    }

    /// Attaches `child` under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not in the tree, `child` already is, or `child`
    /// is out of range.
    pub fn attach(&mut self, child: NodeId, parent: NodeId) {
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert!(
            child.index() < self.parent.len(),
            "child {child} out of range"
        );
        assert!(!self.contains(child), "child {child} already in tree");
        self.parent[child.index()] = Some(parent);
        self.members.push(child);
    }

    /// All nodes of the tree in attachment order (root first).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Children of `n` (order: ascending node id).
    pub fn children(&self, n: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.root && self.parent[m.index()] == Some(n))
            .collect();
        out.sort_unstable();
        out
    }

    /// Directed edges `(child, parent)` — the ReduceScatter flow direction.
    pub fn edges_up(&self) -> Vec<(NodeId, NodeId)> {
        self.members
            .iter()
            .copied()
            .filter(|&m| m != self.root)
            .map(|m| (m, self.parent[m.index()].expect("member has parent")))
            .collect()
    }

    /// Depth of `n` (root is 0), or `None` if `n` is not in the tree.
    pub fn depth(&self, n: NodeId) -> Option<usize> {
        if !self.contains(n) {
            return None;
        }
        let mut d = 0;
        let mut cur = n;
        while cur != self.root {
            cur = self.parent[cur.index()].expect("member chain reaches root");
            d += 1;
            assert!(d <= self.parent.len(), "parent cycle detected");
        }
        Some(d)
    }

    /// Height of the tree: maximum node depth.
    pub fn height(&self) -> usize {
        self.members
            .iter()
            .filter_map(|&m| self.depth(m))
            .max()
            .unwrap_or(0)
    }

    /// Checks structural validity against a mesh: every non-root member's
    /// parent edge connects physical neighbors, and parent chains reach the
    /// root (no cycles, by construction of `attach`).
    pub fn is_valid_on(&self, mesh: &Mesh) -> bool {
        self.members
            .iter()
            .all(|&m| m == self.root || self.parent(m).is_some_and(|p| mesh.are_adjacent(m, p)))
    }

    /// Directed links `(child -> parent)` used by this tree on `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if some tree edge is not a physical mesh link.
    pub fn links_up(&self, mesh: &Mesh) -> Vec<crate::LinkId> {
        self.edges_up()
            .iter()
            .map(|&(c, p)| mesh.link_between(c, p).expect("tree edge is a mesh link"))
            .collect()
    }

    /// Members ordered by decreasing depth (leaves first) — the order in
    /// which ReduceScatter sends fire.
    pub fn bottom_up(&self) -> Vec<NodeId> {
        let mut v: Vec<(usize, NodeId)> = self
            .members
            .iter()
            .map(|&m| (self.depth(m).expect("member"), m))
            .collect();
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, m)| m).collect()
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tree(root={}, nodes={}, height={})",
            self.root,
            self.len(),
            self.height()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Tree {
        let mut t = Tree::new(NodeId(0), n);
        for i in 1..n {
            t.attach(NodeId(i), NodeId(i - 1));
        }
        t
    }

    #[test]
    fn chain_height() {
        let t = chain(5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.depth(NodeId(3)), Some(3));
        assert_eq!(t.depth(NodeId(0)), Some(0));
    }

    #[test]
    fn children_and_edges() {
        let mut t = Tree::new(NodeId(2), 6);
        t.attach(NodeId(0), NodeId(2));
        t.attach(NodeId(4), NodeId(2));
        t.attach(NodeId(5), NodeId(4));
        assert_eq!(t.children(NodeId(2)), vec![NodeId(0), NodeId(4)]);
        let mut e = t.edges_up();
        e.sort();
        assert_eq!(
            e,
            vec![
                (NodeId(0), NodeId(2)),
                (NodeId(4), NodeId(2)),
                (NodeId(5), NodeId(4))
            ]
        );
    }

    #[test]
    fn bottom_up_is_leaves_first() {
        let t = chain(4);
        assert_eq!(
            t.bottom_up(),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn attach_rejects_duplicates() {
        let mut t = chain(3);
        t.attach(NodeId(1), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "not in tree")]
    fn attach_rejects_missing_parent() {
        let mut t = Tree::new(NodeId(0), 4);
        t.attach(NodeId(2), NodeId(1));
    }

    #[test]
    fn validity_on_mesh() {
        let m = Mesh::square(2).unwrap();
        let mut t = Tree::new(NodeId(0), 4);
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(3), NodeId(1));
        t.attach(NodeId(2), NodeId(3));
        assert!(t.is_valid_on(&m));
        // A diagonal edge is invalid.
        let mut t2 = Tree::new(NodeId(0), 4);
        t2.attach(NodeId(3), NodeId(0));
        assert!(!t2.is_valid_on(&m));
    }

    #[test]
    fn parent_of_root_is_none() {
        let t = chain(3);
        assert_eq!(t.parent(NodeId(0)), None);
        assert!(t.contains(NodeId(0)));
    }
}
