#![warn(missing_docs)]

//! Mesh topology substrate for the `meshcoll` simulation stack.
//!
//! This crate models the on-package interconnect topology of a multi-chip-module
//! (MCM) accelerator: a 2D mesh of chiplets connected by bidirectional
//! neighbor links (each modelled as a pair of directed links). It provides:
//!
//! * [`Mesh`] — the topology itself, with row-major [`NodeId`] numbering and
//!   dense [`LinkId`] numbering of directed links,
//! * [`routing`] — XY dimension-order routes between arbitrary node pairs,
//! * [`hamiltonian`] — Hamiltonian-cycle constructions used by the ring-based
//!   AllReduce algorithms, including the odd-mesh cycle that excludes one
//!   corner (paper §IV-A),
//! * [`tree`] — a rooted-tree container used by the tree-based AllReduce
//!   algorithms (DBTree, MultiTree, TTO),
//! * [`fault`] — a model of dead/degraded links and chiplets, plus
//! * [`masked`] — cycle/tree constructions on the fault-masked topology,
//!   which return a typed [`TopologyError::Infeasible`] when the survivors
//!   cannot support the structure.
//!
//! # Example
//!
//! ```
//! use meshcoll_topo::{Mesh, Coord};
//!
//! let mesh = Mesh::new(3, 4)?;
//! assert_eq!(mesh.nodes(), 12);
//! assert_eq!(mesh.directed_links(), 2 * (3 * 3 + 2 * 4));
//! let n = mesh.node_at(Coord::new(1, 2));
//! assert_eq!(mesh.coord(n), Coord::new(1, 2));
//! # Ok::<(), meshcoll_topo::TopologyError>(())
//! ```

mod error;
pub mod fault;
pub mod hamiltonian;
pub mod hierarchy;
pub mod masked;
mod mesh;
pub mod routing;
pub mod timeline;
pub mod tree;

pub use error::TopologyError;
pub use fault::{FaultModel, LinkFlap};
pub use hierarchy::Hierarchy;
pub use masked::MaskedCycle;
pub use mesh::{Coord, Direction, LinkId, Mesh, NodeId, MAX_NODES};
pub use routing::{RouteCache, RouteCacheStats, RoutingAlgorithm};
pub use timeline::{FaultEvent, FaultTimeline};
pub use tree::Tree;
