//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The workspace builds in fully offline environments, so the property-test
//! suites run against this deterministic re-implementation of the narrow
//! API surface they use: `proptest!` with `ProptestConfig::with_cases`,
//! range/tuple/`prop::collection::vec` strategies, `prop_map`, and the
//! `prop_assert*` macros. Unlike upstream proptest there is no shrinking and
//! no persisted failure corpus; instead every test draws its cases from a
//! splitmix64 stream seeded by the test's fully-qualified name, so failures
//! reproduce exactly on every platform and every run.

use std::fmt;
use std::ops::Range;

pub use meshcoll_util::Rng as TestRng;

/// Per-invocation configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property over `cases` sampled inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case; `prop_assert*` return this through the harness.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Seeds the deterministic stream for one test from its qualified name
/// (FNV-1a), so each test gets an independent but reproducible sequence.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// A value generator. Mirrors proptest's `Strategy` in name and in the
/// `prop_map` combinator; generation is direct sampling (no value trees).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Samples one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $below:ident),* $(,)?) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.$below((self.end - self.start) as u64) as $t
            }
        })*
    };
}

int_range_strategy!(usize => below, u64 => below, u32 => below, u16 => below, u8 => below);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = self.end.checked_sub(self.start).expect("ordered range");
        assert!(span > 0, "empty strategy range");
        self.start + rng.below(span as u64) as i64
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Container generators.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Generates `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Output of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the test suites import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines deterministic property tests; see the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness $cfg; $($rest)*);
    };
    (@harness $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "{} failed on case {case}/{}: {e}",
                            stringify!($name),
                            cfg.cases
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@harness $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (a, b) => {
                $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (a, b) => {
                $crate::prop_assert!(*a == *b, $($fmt)*);
            }
        }
    };
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (a, b) => {
                $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (a, b) => {
                $crate::prop_assert!(*a != *b, $($fmt)*);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_within_bounds() {
        let mut rng = crate::rng_for("bounds");
        for _ in 0..500 {
            let v = (1usize..16).generate(&mut rng);
            assert!((1..16).contains(&v));
            let f = (0.0f64..10_000.0).generate(&mut rng);
            assert!((0.0..10_000.0).contains(&f));
            let t = (0usize..4, 1u64..9).generate(&mut rng);
            assert!(t.0 < 4 && (1..9).contains(&t.1));
            let xs = prop::collection::vec(0u64..5, 1..24).generate(&mut rng);
            assert!((1..24).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn mapped_strategies_apply_the_function() {
        let doubled = (0u64..10).prop_map(|x| x * 2);
        let mut rng = crate::rng_for("map");
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn named_streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut r = crate::rng_for("x");
            (0..4).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::rng_for("x");
            (0..4).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_runs_and_asserts(x in 0usize..10, ys in prop::collection::vec(0u64..3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(ys.len(), 0);
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x >= 1, "x was {x}");
        }
    }
}
