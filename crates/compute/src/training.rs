//! Chiplet configuration and mini-batch training-time aggregation.

use crate::systolic::{gemm_cycles, gemm_cycles_weight_stationary, Gemm};
use crate::Layer;

/// Systolic dataflow choice (paper Table II: output-stationary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Outputs accumulate in place (the paper's configuration).
    #[default]
    OutputStationary,
    /// Weights stay resident; activations stream (ablation).
    WeightStationary,
}

/// One chiplet's compute resources (paper Table II, and the Simba variants
/// of §VIII-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipletConfig {
    /// Processing elements per chiplet (Table II: 4x4 = 16).
    pub pes: u64,
    /// MAC-array rows per PE (Table II: 256).
    pub mac_rows: u64,
    /// MAC-array columns per PE (Table II: 256).
    pub mac_cols: u64,
    /// Clock frequency in GHz (Table II: 1 GHz).
    pub freq_ghz: f64,
    /// Weight/gradient precision in bytes (Table II: 32-bit).
    pub precision_bytes: u64,
    /// Systolic dataflow (Table II: output-stationary).
    pub dataflow: Dataflow,
}

impl ChipletConfig {
    /// The paper's default chiplet (Table II): 16 PEs, 256×256 MACs, 1 GHz,
    /// 32-bit precision.
    pub fn paper_default() -> Self {
        ChipletConfig {
            pes: 16,
            mac_rows: 256,
            mac_cols: 256,
            freq_ghz: 1.0,
            precision_bytes: 4,
            dataflow: Dataflow::OutputStationary,
        }
    }

    /// A Simba-style chiplet (§VIII-A): 16 PEs with a `mac x mac` array.
    pub fn simba(mac: u64) -> Self {
        ChipletConfig {
            pes: 16,
            mac_rows: mac,
            mac_cols: mac,
            freq_ghz: 1.0,
            precision_bytes: 4,
            dataflow: Dataflow::OutputStationary,
        }
    }

    /// Cycles for one GEMM on one of this chiplet's PEs, under the
    /// configured dataflow.
    pub fn gemm_cycles(&self, g: Gemm) -> u64 {
        match self.dataflow {
            Dataflow::OutputStationary => gemm_cycles(g, self.mac_rows, self.mac_cols),
            Dataflow::WeightStationary => {
                gemm_cycles_weight_stationary(g, self.mac_rows, self.mac_cols)
            }
        }
    }

    /// Converts cycles to nanoseconds at this chiplet's clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_ghz
    }
}

impl Default for ChipletConfig {
    fn default() -> Self {
        ChipletConfig::paper_default()
    }
}

/// Forward-pass cycles for one sample across all `layers` on one PE.
pub fn forward_cycles(layers: &[Layer], chiplet: &ChipletConfig) -> u64 {
    layers
        .iter()
        .flat_map(Layer::forward_gemms)
        .map(|g| chiplet.gemm_cycles(g))
        .sum()
}

/// Backward-pass cycles for one sample across all `layers` on one PE.
pub fn backward_cycles(layers: &[Layer], chiplet: &ChipletConfig) -> u64 {
    layers
        .iter()
        .flat_map(Layer::backward_gemms)
        .map(|g| chiplet.gemm_cycles(g))
        .sum()
}

/// Backward-pass cycles for a single layer (one sample, one PE) — the
/// granularity the layer-wise overlap experiment needs.
pub fn layer_backward_cycles(layer: &Layer, chiplet: &ChipletConfig) -> u64 {
    layer
        .backward_gemms()
        .into_iter()
        .map(|g| chiplet.gemm_cycles(g))
        .sum()
}

/// Cycles for one training step of `samples_per_chiplet` samples on one
/// chiplet: samples are distributed across the chiplet's PEs (data-parallel
/// within the chiplet), so the chiplet time is the per-sample forward +
/// backward time multiplied by `ceil(samples / PEs)` waves.
pub fn minibatch_train_cycles(
    layers: &[Layer],
    chiplet: &ChipletConfig,
    samples_per_chiplet: u64,
) -> u64 {
    let per_sample = forward_cycles(layers, chiplet) + backward_cycles(layers, chiplet);
    per_sample * samples_per_chiplet.div_ceil(chiplet.pes).max(1)
}

/// [`minibatch_train_cycles`] in nanoseconds.
pub fn minibatch_train_ns(
    layers: &[Layer],
    chiplet: &ChipletConfig,
    samples_per_chiplet: u64,
) -> f64 {
    chiplet.cycles_to_ns(minibatch_train_cycles(layers, chiplet, samples_per_chiplet))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layers() -> Vec<Layer> {
        vec![Layer::conv("c1", 3, 64, 3, 32), Layer::fc("f1", 1024, 10)]
    }

    #[test]
    fn backward_costs_twice_forward() {
        let c = ChipletConfig::paper_default();
        let l = toy_layers();
        let f = forward_cycles(&l, &c);
        let b = backward_cycles(&l, &c);
        // Backward runs two same-MAC GEMMs per forward GEMM; with fill/drain
        // overheads the ratio is near 2 but not exact.
        assert!(b > f && b < 4 * f, "f={f} b={b}");
    }

    #[test]
    fn sixteen_samples_fill_sixteen_pes_in_one_wave() {
        let c = ChipletConfig::paper_default();
        let l = toy_layers();
        let one = minibatch_train_cycles(&l, &c, 1);
        let sixteen = minibatch_train_cycles(&l, &c, 16);
        let seventeen = minibatch_train_cycles(&l, &c, 17);
        assert_eq!(one, sixteen);
        assert_eq!(seventeen, 2 * sixteen);
    }

    #[test]
    fn smaller_mac_arrays_are_slower() {
        let l = toy_layers();
        let big = minibatch_train_cycles(&l, &ChipletConfig::paper_default(), 16);
        let small = minibatch_train_cycles(&l, &ChipletConfig::simba(16), 16);
        assert!(small > big, "small={small} big={big}");
    }

    #[test]
    fn dataflow_changes_compute_time() {
        let l = toy_layers();
        let os = minibatch_train_cycles(&l, &ChipletConfig::paper_default(), 16);
        let ws_cfg = ChipletConfig {
            dataflow: Dataflow::WeightStationary,
            ..ChipletConfig::paper_default()
        };
        let ws = minibatch_train_cycles(&l, &ws_cfg, 16);
        assert_ne!(os, ws);
        assert!(os > 0 && ws > 0);
    }

    #[test]
    fn layer_backward_sums_to_total() {
        let c = ChipletConfig::paper_default();
        let l = toy_layers();
        let sum: u64 = l.iter().map(|x| layer_backward_cycles(x, &c)).sum();
        assert_eq!(sum, backward_cycles(&l, &c));
    }
}
