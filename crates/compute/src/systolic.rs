//! Output-stationary systolic-array GEMM timing.
//!
//! In an output-stationary dataflow each PE of an `R x C` array accumulates
//! one output element in place while the `K`-deep inner products stream
//! through. A `(M x K) · (K x N)` GEMM is tiled into `ceil(M/R) * ceil(N/C)`
//! output tiles; each tile needs `K` accumulation cycles plus `R + C - 2`
//! fill/drain cycles for the skewed operand wavefronts — the same first-order
//! model SCALE-Sim's analytical mode uses.

/// A GEMM shape `(M x K) · (K x N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gemm {
    /// Output rows.
    pub m: u64,
    /// Inner (accumulation) dimension.
    pub k: u64,
    /// Output columns.
    pub n: u64,
}

impl Gemm {
    /// Creates a GEMM shape.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        Gemm { m, k, n }
    }

    /// Multiply–accumulate operations in this GEMM.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }
}

/// Cycles to run one GEMM on an `rows x cols` output-stationary MAC array.
///
/// # Panics
///
/// Panics if the array has zero dimensions or the GEMM is degenerate.
///
/// # Example
///
/// ```
/// use meshcoll_compute::systolic::{gemm_cycles, Gemm};
/// // A perfectly tiled 256x256 output on a 256x256 array with K=512:
/// // one tile, 512 + 510 cycles.
/// assert_eq!(gemm_cycles(Gemm::new(256, 512, 256), 256, 256), 1022);
/// ```
pub fn gemm_cycles(g: Gemm, rows: u64, cols: u64) -> u64 {
    assert!(rows > 0 && cols > 0, "MAC array must be non-empty");
    assert!(g.m > 0 && g.k > 0 && g.n > 0, "degenerate GEMM {g:?}");
    let tiles = g.m.div_ceil(rows) * g.n.div_ceil(cols);
    tiles * (g.k + rows + cols - 2)
}

/// Cycles for one GEMM on a *weight-stationary* `rows x cols` array: weights
/// for a `rows x cols` tile of the `K x N` operand stay resident while `M`
/// activations stream through; the array is refilled `ceil(K/rows) *
/// ceil(N/cols)` times, paying the `rows`-cycle weight-load each time.
/// Provided as a dataflow ablation alongside the paper's output-stationary
/// default.
///
/// # Panics
///
/// Panics if the array has zero dimensions or the GEMM is degenerate.
pub fn gemm_cycles_weight_stationary(g: Gemm, rows: u64, cols: u64) -> u64 {
    assert!(rows > 0 && cols > 0, "MAC array must be non-empty");
    assert!(g.m > 0 && g.k > 0 && g.n > 0, "degenerate GEMM {g:?}");
    let refills = g.k.div_ceil(rows) * g.n.div_ceil(cols);
    refills * (rows + g.m + cols - 1)
}

/// Utilization-style sanity metric: achieved MACs per cycle relative to the
/// array's `rows * cols` peak, in `[0, 1]`.
pub fn efficiency(g: Gemm, rows: u64, cols: u64) -> f64 {
    g.macs() as f64 / (gemm_cycles(g, rows, cols) as f64 * (rows * cols) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tile_efficiency_approaches_one_for_deep_k() {
        let e = efficiency(Gemm::new(256, 1 << 20, 256), 256, 256);
        assert!(e > 0.99, "efficiency {e}");
    }

    #[test]
    fn small_gemm_pays_fill_drain() {
        // A 1x1 output on a 256x256 array still pays the wavefront.
        let c = gemm_cycles(Gemm::new(1, 100, 1), 256, 256);
        assert_eq!(c, 100 + 510);
    }

    #[test]
    fn tiling_is_ceiling_division() {
        let one_tile = gemm_cycles(Gemm::new(256, 64, 256), 256, 256);
        let two_tiles = gemm_cycles(Gemm::new(257, 64, 256), 256, 256);
        assert_eq!(two_tiles, 2 * one_tile);
    }

    #[test]
    fn cycles_scale_linearly_in_k() {
        let g1 = gemm_cycles(Gemm::new(256, 1000, 256), 256, 256);
        let g2 = gemm_cycles(Gemm::new(256, 2000, 256), 256, 256);
        assert_eq!(g2 - g1, 1000);
    }

    #[test]
    fn weight_stationary_favors_tall_activations() {
        // Large M amortizes the weight load: WS beats OS when M >> K tiles.
        let tall = Gemm::new(100_000, 256, 256);
        assert!(gemm_cycles_weight_stationary(tall, 256, 256) < gemm_cycles(tall, 256, 256));
        // Tiny M with deep K: OS wins (WS refills the array constantly).
        let deep = Gemm::new(1, 100_000, 256);
        assert!(gemm_cycles_weight_stationary(deep, 256, 256) > gemm_cycles(deep, 256, 256));
    }

    #[test]
    fn smaller_arrays_take_longer() {
        let big = gemm_cycles(Gemm::new(512, 512, 512), 256, 256);
        let small = gemm_cycles(Gemm::new(512, 512, 512), 16, 16);
        assert!(small > 100 * big / 10, "{small} vs {big}");
    }
}
