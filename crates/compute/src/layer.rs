//! DNN layer shapes and their GEMM decompositions.

use crate::systolic::Gemm;

/// One trainable layer of a DNN workload.
///
/// Only the shapes that determine compute time and gradient volume are
/// modelled; activation functions, pooling, and normalization are folded
/// away (they are negligible on a MAC array and carry few or no gradients).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Layer {
    /// 2D convolution, mapped to a GEMM via im2col.
    Conv {
        /// Layer name (for breakdowns).
        name: &'static str,
        /// Input channels.
        in_ch: u64,
        /// Output channels (filters).
        out_ch: u64,
        /// Square kernel size.
        kernel: u64,
        /// Output feature-map height/width (square).
        out_hw: u64,
    },
    /// Depthwise 2D convolution (one filter per channel; MobileNet-style).
    DepthwiseConv {
        /// Layer name.
        name: &'static str,
        /// Channels (input == output).
        channels: u64,
        /// Square kernel size.
        kernel: u64,
        /// Output feature-map height/width (square).
        out_hw: u64,
    },
    /// Fully connected layer.
    Fc {
        /// Layer name.
        name: &'static str,
        /// Input features.
        in_features: u64,
        /// Output features.
        out_features: u64,
    },
    /// Embedding table: huge gradient, negligible MAC-array compute.
    Embedding {
        /// Layer name.
        name: &'static str,
        /// Table rows.
        vocab: u64,
        /// Embedding dimension.
        dim: u64,
    },
    /// Multi-head self-attention block (projections + score/context GEMMs).
    Attention {
        /// Layer name.
        name: &'static str,
        /// Sequence length.
        seq: u64,
        /// Model width.
        d_model: u64,
        /// Attention heads.
        heads: u64,
    },
}

impl Layer {
    /// A convolution layer.
    pub fn conv(name: &'static str, in_ch: u64, out_ch: u64, kernel: u64, out_hw: u64) -> Self {
        Layer::Conv {
            name,
            in_ch,
            out_ch,
            kernel,
            out_hw,
        }
    }

    /// A depthwise convolution layer.
    pub fn depthwise_conv(name: &'static str, channels: u64, kernel: u64, out_hw: u64) -> Self {
        Layer::DepthwiseConv {
            name,
            channels,
            kernel,
            out_hw,
        }
    }

    /// A fully connected layer.
    pub fn fc(name: &'static str, in_features: u64, out_features: u64) -> Self {
        Layer::Fc {
            name,
            in_features,
            out_features,
        }
    }

    /// An embedding table.
    pub fn embedding(name: &'static str, vocab: u64, dim: u64) -> Self {
        Layer::Embedding { name, vocab, dim }
    }

    /// A multi-head attention block.
    pub fn attention(name: &'static str, seq: u64, d_model: u64, heads: u64) -> Self {
        Layer::Attention {
            name,
            seq,
            d_model,
            heads,
        }
    }

    /// The layer's name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Conv { name, .. }
            | Layer::DepthwiseConv { name, .. }
            | Layer::Fc { name, .. }
            | Layer::Embedding { name, .. }
            | Layer::Attention { name, .. } => name,
        }
    }

    /// Trainable parameter count (weights; biases are negligible and folded
    /// into the weight count's order of magnitude).
    pub fn params(&self) -> u64 {
        match *self {
            Layer::Conv {
                in_ch,
                out_ch,
                kernel,
                ..
            } => in_ch * out_ch * kernel * kernel,
            Layer::DepthwiseConv {
                channels, kernel, ..
            } => channels * kernel * kernel,
            Layer::Fc {
                in_features,
                out_features,
                ..
            } => in_features * out_features,
            Layer::Embedding { vocab, dim, .. } => vocab * dim,
            Layer::Attention { d_model, .. } => 4 * d_model * d_model,
        }
    }

    /// The forward-pass GEMMs for one sample.
    pub fn forward_gemms(&self) -> Vec<Gemm> {
        match *self {
            Layer::Conv {
                in_ch,
                out_ch,
                kernel,
                out_hw,
                ..
            } => vec![Gemm::new(out_hw * out_hw, in_ch * kernel * kernel, out_ch)],
            // Each channel's kxk filter correlates independently; as a GEMM
            // it is out_hw^2 outputs x k^2 accumulation, repeated per
            // channel — modelled as one GEMM with N = channels and K = k^2
            // (the channel dimension maps across array columns).
            Layer::DepthwiseConv {
                channels,
                kernel,
                out_hw,
                ..
            } => vec![Gemm::new(out_hw * out_hw, kernel * kernel, channels)],
            Layer::Fc {
                in_features,
                out_features,
                ..
            } => vec![Gemm::new(1, in_features, out_features)],
            // Table lookup: no MAC-array GEMM.
            Layer::Embedding { .. } => vec![],
            Layer::Attention {
                seq,
                d_model,
                heads,
                ..
            } => {
                let d_head = (d_model / heads).max(1);
                let mut v = Vec::with_capacity(3 + 2 * heads as usize);
                // Q, K, V projections fused: seq x d_model x 3*d_model.
                v.push(Gemm::new(seq, d_model, 3 * d_model));
                for _ in 0..heads {
                    v.push(Gemm::new(seq, d_head, seq)); // scores
                    v.push(Gemm::new(seq, seq, d_head)); // context
                }
                v.push(Gemm::new(seq, d_model, d_model)); // output projection
                v
            }
        }
    }

    /// The backward-pass GEMMs for one sample: for every forward GEMM
    /// `(M,K,N)`, the input-gradient GEMM `(M,N,K)` and the weight-gradient
    /// GEMM `(K,M,N)`.
    pub fn backward_gemms(&self) -> Vec<Gemm> {
        self.forward_gemms()
            .into_iter()
            .flat_map(|g| [Gemm::new(g.m, g.n, g.k), Gemm::new(g.k, g.m, g.n)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_params_and_gemm() {
        let l = Layer::conv("c", 3, 96, 11, 55);
        assert_eq!(l.params(), 3 * 96 * 121);
        let g = l.forward_gemms();
        assert_eq!(g, vec![Gemm::new(3025, 363, 96)]);
    }

    #[test]
    fn depthwise_conv_params_and_gemm() {
        let l = Layer::depthwise_conv("dw", 512, 3, 14);
        assert_eq!(l.params(), 512 * 9);
        assert_eq!(l.forward_gemms(), vec![Gemm::new(196, 9, 512)]);
    }

    #[test]
    fn fc_params() {
        let l = Layer::fc("f", 4096, 1000);
        assert_eq!(l.params(), 4_096_000);
    }

    #[test]
    fn embedding_has_params_but_no_gemms() {
        let l = Layer::embedding("e", 37_000, 512);
        assert_eq!(l.params(), 18_944_000);
        assert!(l.forward_gemms().is_empty());
        assert!(l.backward_gemms().is_empty());
    }

    #[test]
    fn attention_gemm_count() {
        let l = Layer::attention("a", 64, 512, 8);
        assert_eq!(l.forward_gemms().len(), 2 + 2 * 8);
        assert_eq!(l.backward_gemms().len(), 2 * (2 + 2 * 8));
        assert_eq!(l.params(), 4 * 512 * 512);
    }

    #[test]
    fn backward_has_twice_the_macs_of_forward() {
        let l = Layer::conv("c", 64, 64, 3, 28);
        let f: u64 = l.forward_gemms().iter().map(Gemm::macs).sum();
        let b: u64 = l.backward_gemms().iter().map(Gemm::macs).sum();
        assert_eq!(b, 2 * f);
    }
}
