#![warn(missing_docs)]

//! Per-chiplet DNN training-time model (the SCALE-Sim substitute).
//!
//! The paper extends SCALE-Sim to model forward *and* backward propagation
//! of DNN training on each chiplet's systolic MAC array with an
//! output-stationary dataflow (Table II: 4×4 PEs per chiplet, each PE a
//! 256×256 MAC array at 1 GHz, 32-bit precision). This crate reproduces
//! that analytically:
//!
//! * [`systolic`] — cycle counts for GEMMs on an output-stationary array
//!   (`tiles × (K + rows + cols − 2)`),
//! * [`Layer`] — DNN layer shapes and their GEMM decompositions (convolution
//!   via im2col; attention via its projection/score/context GEMMs),
//! * [`ChipletConfig`] + [`training`] — forward+backward cycles for a
//!   mini-batch slice distributed over a chiplet's PEs.
//!
//! # Example
//!
//! ```
//! use meshcoll_compute::{training, ChipletConfig, Layer};
//!
//! let chiplet = ChipletConfig::paper_default();
//! let layers = vec![Layer::fc("fc", 4096, 1000)];
//! let ns = training::minibatch_train_ns(&layers, &chiplet, 16);
//! assert!(ns > 0.0);
//! ```

pub mod systolic;
pub mod training;

mod layer;

pub use layer::Layer;
pub use training::{ChipletConfig, Dataflow};
