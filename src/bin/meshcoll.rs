//! `meshcoll` — command-line front end to the library.
//!
//! ```text
//! meshcoll schedule  <rows> <cols> <algorithm> <bytes>      summarize a schedule
//! meshcoll verify    <rows> <cols> <algorithm> <bytes>      functional AllReduce proof
//! meshcoll simulate  <rows> <cols> <algorithm> <bytes>      time it on the packet simulator
//! meshcoll export    <rows> <cols> <algorithm> <bytes> dot|trace   print DOT / TSV
//! meshcoll compare   <rows> <cols> <bytes>                  every applicable algorithm
//! meshcoll table1 | algorithms                              reference listings
//! ```

use std::process::ExitCode;

use meshcoll::collectives::{analysis, export, verify, Algorithm, Applicability};
use meshcoll::prelude::*;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let torus = args.iter().any(|a| a == "--torus");
    args.retain(|a| a != "--torus");
    TORUS.with(|t| t.set(torus));
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

thread_local! {
    static TORUS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

const USAGE: &str = "usage (append --torus for wrap-around links):
  meshcoll schedule <rows> <cols> <algorithm> <bytes>
  meshcoll verify   <rows> <cols> <algorithm> <bytes>
  meshcoll simulate <rows> <cols> <algorithm> <bytes>
  meshcoll export   <rows> <cols> <algorithm> <bytes> <dot|trace>
  meshcoll compare  <rows> <cols> <bytes>
  meshcoll algorithms
  meshcoll table1 <rows> <cols>

algorithms: Ring, Ring-2D, DBTree, HDRM, MultiTree, RingBiEven, RingBiOdd, TTO";

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn run(args: &[String]) -> CliResult {
    let cmd = args.first().map(String::as_str).ok_or("missing command")?;
    match cmd {
        "schedule" => {
            let (mesh, algo, bytes) = parse_mab(&args[1..])?;
            let s = algo.schedule(&mesh, bytes)?;
            let stats = analysis::schedule_stats(&mesh, &s);
            println!("{} on {mesh}, {bytes} bytes/node:", s.name());
            println!("  ops:                {}", stats.ops);
            println!("  participants:       {}", s.participants().len());
            println!("  critical path:      {} steps", stats.critical_path_len);
            println!("  wire bytes:         {}", s.total_wire_bytes());
            println!("  link-byte traffic:  {}", stats.link_byte_traffic);
            println!(
                "  hops (max / mean):  {} / {:.2}",
                stats.max_hops, stats.mean_hops
            );
            println!(
                "  per-node tx / rx:   {} / {} bytes (max)",
                stats.max_node_tx_bytes, stats.max_node_rx_bytes
            );
            Ok(())
        }
        "verify" => {
            let (mesh, algo, bytes) = parse_mab(&args[1..])?;
            let s = algo.schedule(&mesh, bytes)?;
            verify::check_allreduce(&mesh, &s)?;
            for seed in 0..4 {
                verify::check_allreduce_seeded(&mesh, &s, seed)?;
            }
            println!(
                "ok: {} on {mesh} is a correct AllReduce over {} participants \
                 (insertion order + 4 randomized orders)",
                s.name(),
                s.participants().len()
            );
            Ok(())
        }
        "simulate" => {
            let (mesh, algo, bytes) = parse_mab(&args[1..])?;
            let s = algo.schedule(&mesh, bytes)?;
            let run = SimEngine::new(NocConfig::paper_default()).run(&mesh, &s)?;
            println!("{} on {mesh}, {bytes} bytes/node:", s.name());
            println!("  time:             {:.3} ms", run.total_time_ns / 1e6);
            println!("  bandwidth:        {:.2} GB/s", run.bandwidth_gbps(bytes));
            println!("  link utilization: {:.1} %", run.link_utilization_percent);
            println!("  links touched:    {:.1} %", run.used_link_percent);
            Ok(())
        }
        "export" => {
            let (mesh, algo, bytes) = parse_mab(&args[1..])?;
            let s = algo.schedule(&mesh, bytes)?;
            match args.get(5).map(String::as_str) {
                Some("dot") => print!("{}", export::to_dot(&s)),
                Some("trace") => print!("{}", export::to_trace(&s)),
                other => return Err(format!("export format {other:?}; use dot or trace").into()),
            }
            Ok(())
        }
        "compare" => {
            let mesh = parse_mesh(&args[1..])?;
            let bytes: u64 = args.get(3).ok_or("missing <bytes>")?.parse()?;
            let engine = SimEngine::new(NocConfig::paper_default());
            println!(
                "{:<12} {:>12} {:>10} {:>12}",
                "algorithm", "time ms", "GB/s", "links busy %"
            );
            for algo in Algorithm::ALL {
                if algo.applicability(&mesh) == Applicability::Inapplicable {
                    continue;
                }
                let s = algo.schedule(&mesh, bytes)?;
                let run = engine.run(&mesh, &s)?;
                println!(
                    "{:<12} {:>12.3} {:>10.2} {:>12.1}",
                    algo.name(),
                    run.total_time_ns / 1e6,
                    run.bandwidth_gbps(bytes),
                    run.link_utilization_percent
                );
            }
            Ok(())
        }
        "algorithms" => {
            for a in Algorithm::ALL {
                println!("{}", a.name());
            }
            Ok(())
        }
        "table1" => {
            let mesh = parse_mesh(&args[1..])?;
            println!("{:<12} {:>14}", "algorithm", "applicability");
            for a in Algorithm::ALL {
                println!(
                    "{:<12} {:>14}",
                    a.name(),
                    a.applicability(&mesh).to_string()
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}").into()),
    }
}

fn parse_mesh(args: &[String]) -> Result<Mesh, Box<dyn std::error::Error>> {
    let rows: usize = args.first().ok_or("missing <rows>")?.parse()?;
    let cols: usize = args.get(1).ok_or("missing <cols>")?.parse()?;
    Ok(if TORUS.with(std::cell::Cell::get) {
        Mesh::torus(rows, cols)?
    } else {
        Mesh::new(rows, cols)?
    })
}

fn parse_mab(args: &[String]) -> Result<(Mesh, Algorithm, u64), Box<dyn std::error::Error>> {
    let mesh = parse_mesh(args)?;
    let name = args.get(2).ok_or("missing <algorithm>")?;
    let algo = Algorithm::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown algorithm {name}"))?;
    let bytes: u64 = args.get(3).ok_or("missing <bytes>")?.parse()?;
    Ok((mesh, algo, bytes))
}
