#![warn(missing_docs)]

//! # meshcoll — collective communication for MCM accelerators
//!
//! A Rust reproduction of *"Enhancing Collective Communication in MCM
//! Accelerators for Deep Learning Training"* (HPCA 2024): topology-aware
//! AllReduce algorithms for 2D-mesh multi-chip-module accelerators
//! (**RingBiOdd** and **TTO**), the baselines they are evaluated against, and
//! the full simulation stack (mesh topology, packet/flit network simulators,
//! systolic-array compute model, DNN workloads, end-to-end training-epoch
//! model) needed to regenerate every table and figure of the paper.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`topo`] — mesh topology, Hamiltonian cycles, XY routing, trees,
//! * [`noc`] — on-package network simulators (packet-level and flit-level),
//! * [`collectives`] — AllReduce schedule generators and the functional
//!   correctness checker,
//! * [`compute`] — output-stationary systolic-array training-time model,
//! * [`models`] — the seven DNN workloads used in the paper's evaluation,
//! * [`sim`] — experiment engines (bandwidth, link utilization, epoch time,
//!   compute/communication overlap).
//!
//! # Quickstart
//!
//! ```
//! use meshcoll::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 5x5 (odd) mesh: Bidirectional Ring AllReduce is classically
//! // inapplicable, but RingBiOdd makes it work.
//! let mesh = Mesh::square(5)?;
//! let schedule = Algorithm::RingBiOdd.schedule(&mesh, 1 << 20)?;
//!
//! // Functional check: every training node ends with the full sum.
//! meshcoll::collectives::verify::check_allreduce(&mesh, &schedule)?;
//!
//! // Timing: run the schedule through the packet-level network simulator.
//! let result = SimEngine::new(NocConfig::paper_default()).run(&mesh, &schedule)?;
//! assert!(result.total_time_ns > 0.0);
//! # Ok(())
//! # }
//! ```

pub use meshcoll_collectives as collectives;
pub use meshcoll_compute as compute;
pub use meshcoll_models as models;
pub use meshcoll_noc as noc;
pub use meshcoll_sim as sim;
pub use meshcoll_topo as topo;

/// Convenient single-import surface for the most common types.
pub mod prelude {
    pub use meshcoll_collectives::{Algorithm, Schedule};
    pub use meshcoll_compute::ChipletConfig;
    pub use meshcoll_models::{DnnModel, Model};
    pub use meshcoll_noc::NocConfig;
    pub use meshcoll_sim::SimEngine;
    pub use meshcoll_topo::{Coord, Mesh, NodeId};
}
